package server_test

import (
	"errors"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ido-nvm/ido/internal/chaos"
	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/kv/memcache"
	"github.com/ido-nvm/ido/internal/loadgen"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/metrics"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
	"github.com/ido-nvm/ido/internal/replica"
	"github.com/ido-nvm/ido/internal/server"
)

// replWorld is one machine of a replicated pair: its own device, region,
// runtime, and store.
type replWorld struct {
	reg   *region.Region
	lm    *locks.Manager
	rt    persist.Runtime
	store *server.McStore
}

func newReplWorld(t *testing.T, shards int) *replWorld {
	t.Helper()
	w := &replWorld{}
	w.reg = region.Create(1<<22, nvm.Config{
		Size:        1 << 22,
		GroupCommit: nvm.GroupCommitConfig{Enabled: true, WindowNS: 2000},
	})
	w.lm = locks.NewManager(w.reg)
	w.rt = core.New(core.DefaultConfig())
	if err := w.rt.Attach(w.reg, w.lm); err != nil {
		t.Fatalf("attach: %v", err)
	}
	var err error
	w.store, err = server.NewMcStore(&memcache.Env{Reg: w.reg, LM: w.lm}, shards, 64)
	if err != nil {
		t.Fatalf("new store: %v", err)
	}
	return w
}

// shipperDial returns the standby-side dial function: a MemPipe to the
// shipper, failing fast once the primary is dead (a TCP dial would get
// connection-refused).
func shipperDial(sh *replica.Shipper) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		if sh.Killed() {
			return nil, errors.New("primary down")
		}
		c, s := loadgen.MemPipe(1 << 16)
		go func() {
			if err := sh.AttachConn(s); err != nil {
				s.Close()
			}
		}()
		return c, nil
	}
}

// TestFailoverPrimaryCrashMidLoad is the headline availability test:
// a primary with an attached hot standby dies on an injected device
// crash (a budget, so it fires inside a mutating FASE) while
// fault-tolerant clients drive a tracked mixed load. The clients must
// ride the loss onto the promoted standby, and — the durability
// contract — every write acked to a client before the crash must be
// explainable on the standby's image: acked implies receipt-acked
// implies applied by the promotion drain.
func TestFailoverPrimaryCrashMidLoad(t *testing.T) {
	const shards = 4

	primary := newReplWorld(t, shards)
	standby := newReplWorld(t, shards)

	sh, err := replica.NewShipper(replica.ShipperConfig{
		Shards:    shards,
		Heartbeat: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srvP, err := server.New(primary.rt, primary.store, server.Config{
		Proto: server.ProtoMemcache,
		Repl:  sh,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	sb, err := replica.NewStandby(replica.StandbyConfig{
		Store:            standby.store,
		RT:               standby.rt,
		Reg:              standby.reg,
		HeartbeatTimeout: 200 * time.Millisecond,
		ReconnectBudget:  3,
		ReconnectBackoff: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sbDone := make(chan error, 1)
	go func() { sbDone <- sb.Run(shipperDial(sh)) }()
	deadline := time.Now().Add(10 * time.Second)
	for !sh.Attached() {
		if time.Now().After(deadline) {
			t.Fatal("standby never attached")
		}
		time.Sleep(time.Millisecond)
	}

	// Promotion pipeline: when the standby promotes, stand a server up
	// over its store and publish it to the client dial path.
	var promoted atomic.Pointer[server.Server]
	promErr := make(chan error, 1)
	go func() {
		if err := <-sbDone; err != nil {
			promErr <- err
			return
		}
		srvS, err := server.New(standby.rt, standby.store, server.Config{Proto: server.ProtoMemcache}, nil)
		if err != nil {
			promErr <- err
			return
		}
		promoted.Store(srvS)
		promErr <- nil
	}()

	primaryDial := func() (net.Conn, error) {
		client, srvEnd := loadgen.MemPipe(64 << 10)
		if serr := srvP.ServeConn(srvEnd); serr != nil {
			client.Close()
			return nil, serr
		}
		return client, nil
	}
	standbyDial := func() (net.Conn, error) {
		srvS := promoted.Load()
		if srvS == nil {
			return nil, errors.New("standby not serving yet")
		}
		client, srvEnd := loadgen.MemPipe(64 << 10)
		if serr := srvS.ServeConn(srvEnd); serr != nil {
			client.Close()
			return nil, serr
		}
		return client, nil
	}

	// Arm a device-local crash budget on the primary only: it burns on
	// primary device events and fires mid-FASE; the standby's device
	// (and its apply FASEs) keep running.
	primary.reg.Dev.ArmLocalCrash(250_000)
	defer primary.reg.Dev.ArmLocalCrash(-1)

	res, err := loadgen.RunFT(loadgen.Config{
		Proto: loadgen.ProtoMemcache, Conns: 4, Pipeline: 4, Keys: 256,
		SetPct: 40, DelPct: 20, Duration: 15 * time.Second, Seed: 21, Track: true,
		OpTimeout:        2 * time.Second,
		ReconnectBackoff: 2 * time.Millisecond,
		MaxDialTries:     10_000,
	}, []func() (net.Conn, error){primaryDial, standbyDial})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}

	select {
	case <-srvP.Crashed():
	default:
		t.Fatal("primary crash budget did not fire during the load")
	}
	if !primary.reg.Dev.LocalCrashFired() {
		t.Fatal("local crash not fired on primary device")
	}
	if standby.reg.Dev.LocalCrashFired() {
		t.Fatal("standby device caught the primary's crash")
	}
	// The semi-sync contract must have held while the primary served: a
	// degraded (detached) window would have released acks without
	// standby receipt, voiding the zero-acked-loss check below.
	// Snapshot before Close — Close releases the tokens orphaned by the
	// kill, and those count as degraded completions of a dead server,
	// not acks any client received.
	var shStats metrics.ReplStats
	sh.ReplSnapshot(&shStats)
	if shStats.Degraded > 0 {
		t.Fatalf("shipper degraded %d completions mid-run; semi-sync window was broken", shStats.Degraded)
	}
	srvP.Close()
	if err := <-promErr; err != nil {
		t.Fatalf("promotion: %v", err)
	}
	srvS := promoted.Load()
	defer srvS.Close()

	if res.Errs != 0 {
		t.Fatalf("clients saw %d error replies", res.Errs)
	}
	if res.Failovers == 0 {
		t.Fatalf("no failovers recorded (reconnects=%d retries=%d) — clients never moved to the standby", res.Reconnects, res.Retries)
	}
	var sbStats metrics.ReplStats
	sb.ReplSnapshot(&sbStats)
	if sbStats.Failovers != 1 {
		t.Fatalf("standby promotions = %d, want 1", sbStats.Failovers)
	}
	t.Logf("load: %d ops, %d reconnects, %d failovers, %d lost in flight; standby applied %d",
		res.Ops, res.Reconnects, res.Failovers, res.TimedOut, sbStats.Records)

	// Zero acked-write loss: every tracked key's state on the promoted
	// standby must be explainable by an acked-or-later prefix of its
	// history. The standby never crashed, so no recovery pass is needed
	// — the promotion drain already made receipt == applied.
	th, err := standby.rt.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for k, h := range res.Tracked {
		if len(h.Ops) == 0 {
			continue
		}
		kb := loadgen.AppendKey(nil, k)
		k0, k1, okk := server.McKeyWords(kb)
		if !okk {
			t.Fatalf("generated key %q is not storable", kb)
		}
		shard := standby.store.ShardOf(k0, k1)
		val, present := standby.store.Get(th, shard, k0, k1)
		if !h.Explainable(present, val) {
			t.Fatalf("key %q (present=%v val=%d) unexplainable on standby: acked=%d ops=%+v",
				kb, present, val, h.Acked, h.Ops)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no tracked keys to verify")
	}

	// The standby's image is structurally sound and re-serves reads
	// error-free.
	for i, tbl := range standby.store.Tables() {
		if err := chaos.CheckCacheImage(standby.reg.Dev, tbl); err != nil {
			t.Fatalf("standby shard %d image: %v", i, err)
		}
	}
	res2, err := loadgen.Run(loadgen.Config{
		Proto: loadgen.ProtoMemcache, Conns: 2, Pipeline: 4, Keys: 256,
		SetPct: 0, DelPct: 0, Ops: 200, Seed: 22,
	}, standbyDial)
	if err != nil {
		t.Fatalf("post-failover loadgen: %v", err)
	}
	if res2.Errs != 0 || res2.Ops != 400 {
		t.Fatalf("post-failover reads: %d ops, %d errors", res2.Ops, res2.Errs)
	}
	t.Logf("%d keys verified on the promoted standby, %d post-failover reads clean", checked, res2.Ops)
}

// TestStandbyCrashMidApplyReplays crashes the standby inside an apply
// FASE, reboots its device through the standard crash-recover ritual,
// and reattaches: replay from the durable watermark must re-apply the
// unpersisted suffix idempotently and converge with the primary's
// history.
func TestStandbyCrashMidApplyReplays(t *testing.T) {
	const (
		shards = 2
		nkeys  = 64
		nrecs  = 600
	)

	standby := newReplWorld(t, shards)
	sh, err := replica.NewShipper(replica.ShipperConfig{
		Shards:    shards,
		Heartbeat: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var completions atomic.Uint64
	sh.SetComplete(func(any) { completions.Add(1) })

	sb, err := replica.NewStandby(replica.StandbyConfig{
		Store:            standby.store,
		RT:               standby.rt,
		Reg:              standby.reg,
		HeartbeatTimeout: 200 * time.Millisecond,
		ReconnectBackoff: 2 * time.Millisecond,
		WatermarkEvery:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	sbDone := make(chan error, 1)
	go func() { sbDone <- sb.Run(shipperDial(sh)) }()

	// The publish plan: interleaved sets and deletes over a small key
	// space; the expected final state is computed alongside.
	type kw struct{ k0, k1 uint64 }
	keyWords := make([]kw, nkeys)
	for i := range keyWords {
		kb := loadgen.AppendKey(nil, uint64(i))
		k0, k1, ok := server.McKeyWords(kb)
		if !ok {
			t.Fatalf("key %q not storable", kb)
		}
		keyWords[i] = kw{k0, k1}
	}
	want := map[kw]uint64{}
	rng := rand.New(rand.NewSource(77))

	// Arm the standby's device mid-stream: apply FASEs burn the budget
	// and die inside one. Arm after attach so the handshake survives.
	deadline := time.Now().Add(10 * time.Second)
	for !sh.Attached() {
		if time.Now().After(deadline) {
			t.Fatal("standby never attached")
		}
		time.Sleep(time.Millisecond)
	}
	standby.reg.Dev.ArmLocalCrash(20_000)
	defer standby.reg.Dev.ArmLocalCrash(-1)

	for i := 0; i < nrecs; i++ {
		k := keyWords[rng.Intn(nkeys)]
		shard := standby.store.ShardOf(k.k0, k.k1)
		if rng.Intn(5) == 0 {
			sh.Publish(shard, replica.OpDel, k.k0, k.k1, 0, i)
			delete(want, k)
		} else {
			v := uint64(10_000 + i)
			sh.Publish(shard, replica.OpSet, k.k0, k.k1, v, i)
			want[k] = v
		}
	}

	select {
	case err := <-sbDone:
		if !errors.Is(err, replica.ErrStandbyCrashed) {
			t.Fatalf("standby Run returned %v, want ErrStandbyCrashed", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("standby crash budget did not fire mid-apply")
	}

	// Reboot the standby machine: crash-recover the region, reattach
	// the store, resume interrupted FASEs — the ritual every restarted
	// process runs — then rebuild the standby over the recovered store.
	reg2, err := standby.reg.Crash(nvm.CrashRandom, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("reattach: %v", err)
	}
	lm2 := locks.NewManager(reg2)
	rt2 := core.New(core.DefaultConfig())
	if err := rt2.Attach(reg2, lm2); err != nil {
		t.Fatalf("attach2: %v", err)
	}
	rr := persist.NewResumeRegistry()
	store2, err := server.AttachMcStore(&memcache.Env{Reg: reg2, LM: lm2})
	if err != nil {
		t.Fatalf("attach store: %v", err)
	}
	store2.Register(rr)
	if _, err := rt2.Recover(rr); err != nil {
		t.Fatalf("recover: %v", err)
	}
	for i, tbl := range store2.Tables() {
		if err := chaos.CheckCacheImage(reg2.Dev, tbl); err != nil {
			t.Fatalf("recovered shard %d image: %v", i, err)
		}
	}

	sb2, err := replica.NewStandby(replica.StandbyConfig{
		Store:            store2,
		RT:               rt2,
		Reg:              reg2,
		HeartbeatTimeout: 200 * time.Millisecond,
		ReconnectBackoff: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewStandby after reboot: %v", err)
	}
	sb2Done := make(chan error, 1)
	go func() { sb2Done <- sb2.Run(shipperDial(sh)) }()

	// Convergence: the shipper resends everything above the standby's
	// durable watermark; when the durable ack catches the full history,
	// the replay is complete.
	deadline = time.Now().Add(20 * time.Second)
	for {
		var s metrics.ReplStats
		sh.ReplSnapshot(&s)
		if s.Attached == 1 && s.LagRecs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replay did not converge: lag %d records", s.LagRecs)
		}
		time.Sleep(time.Millisecond)
	}

	th, err := rt2.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keyWords {
		shard := store2.ShardOf(k.k0, k.k1)
		val, present := store2.Get(th, shard, k.k0, k.k1)
		wantVal, wantPresent := want[k]
		if present != wantPresent || (present && val != wantVal) {
			t.Fatalf("key %d after replay: got (%d,%v), want (%d,%v)",
				i, val, present, wantVal, wantPresent)
		}
	}

	var s2 metrics.ReplStats
	sb2.ReplSnapshot(&s2)
	t.Logf("replayed: %d applied, %d duplicate-skipped after standby reboot", s2.Records, s2.Degraded)

	sb2.Stop()
	<-sb2Done
	sh.Close()
}
