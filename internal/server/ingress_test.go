package server_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"github.com/ido-nvm/ido/internal/loadgen"
	"github.com/ido-nvm/ido/internal/metrics"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/server"
)

// snap is a MetricsSnapshot convenience for the ingress assertions.
func snap(srv *server.Server) metrics.ServerStats {
	var s metrics.ServerStats
	srv.MetricsSnapshot(&s)
	return s
}

// TestMaxConnsGate: connections past the MaxConns watermark get the
// protocol's canned busy error and an immediate close; ServeConn
// reports ErrServerBusy; a freed slot re-admits.
func TestMaxConnsGate(t *testing.T) {
	for _, tc := range []struct {
		name  string
		proto server.Proto
		busy  string
	}{
		{"memcache", server.ProtoMemcache, "SERVER_ERROR busy\r\n"},
		{"resp", server.ProtoRESP, "-ERR server busy\r\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := newWorldCfg(t, tc.proto, 2, nvm.Config{Size: 1 << 22}, nil,
				func(cfg *server.Config) { cfg.MaxConns = 2 })

			c1 := w.dial(t)
			defer c1.Close()
			c2 := w.dial(t)

			// Third connection: canned busy reply, then close.
			client, srvEnd := loadgen.MemPipe(1 << 12)
			if err := w.srv.ServeConn(srvEnd); !errors.Is(err, server.ErrServerBusy) {
				t.Fatalf("ServeConn over the gate: err = %v, want ErrServerBusy", err)
			}
			got := readFull(t, client, len(tc.busy))
			if string(got) != tc.busy {
				t.Fatalf("busy reply = %q, want %q", got, tc.busy)
			}
			expectEOF(t, client)
			if st := snap(w.srv); st.ConnsRejected != 1 {
				t.Fatalf("ConnsRejected = %d, want 1", st.ConnsRejected)
			}

			// Freeing a slot re-admits the next dial.
			c2.Close()
			deadline := time.Now().Add(5 * time.Second)
			for snap(w.srv).ConnsOpen >= 2 {
				if time.Now().After(deadline) {
					t.Fatal("closed connection never unregistered")
				}
				time.Sleep(time.Millisecond)
			}
			c3 := w.dial(t)
			defer c3.Close()
			if tc.proto == server.ProtoMemcache {
				runSteps(t, c3, []step{{"get readmitted\r\n", "END\r\n"}})
			} else {
				runSteps(t, c3, []step{{"*1\r\n$4\r\nPING\r\n", "+PONG\r\n"}})
			}
		})
	}
}

// TestIdleTimeoutKicksIdleConn: a connection silent past IdleTimeout is
// closed by the server and counted, while a connection that keeps
// talking is left alone (each completed read re-arms the deadline).
func TestIdleTimeoutKicksIdleConn(t *testing.T) {
	w := newWorldCfg(t, server.ProtoMemcache, 2, nvm.Config{Size: 1 << 22}, nil,
		func(cfg *server.Config) { cfg.IdleTimeout = 100 * time.Millisecond })

	busy := w.dial(t)
	defer busy.Close()
	idle := w.dial(t)
	defer idle.Close()

	// Keep one connection chatty across several idle windows; the idle
	// one goes quiet after a single op.
	runSteps(t, idle, []step{{"set k 0 0 1\r\n1\r\n", "STORED\r\n"}})
	for i := 0; i < 8; i++ {
		runSteps(t, busy, []step{{"get k\r\n", "VALUE k 0 1\r\n1\r\nEND\r\n"}})
		time.Sleep(40 * time.Millisecond)
	}
	expectEOF(t, idle)

	st := snap(w.srv)
	if st.IdleClosed != 1 {
		t.Fatalf("IdleClosed = %d, want 1 (busy conn must not be kicked)", st.IdleClosed)
	}
	// The chatty connection is still serviceable.
	runSteps(t, busy, []step{{"get k\r\n", "VALUE k 0 1\r\n1\r\nEND\r\n"}})
}

// TestDrainMidLoad: Drain under live pipelined load must flush every
// acknowledged response (clients parse clean replies, no error replies,
// no torn frames), release all connections within the budget, and leave
// the store re-servable by a fresh front end.
func TestDrainMidLoad(t *testing.T) {
	w := newWorld(t, server.ProtoMemcache, 4, nvm.Config{
		Size:        1 << 22,
		GroupCommit: nvm.GroupCommitConfig{Enabled: true, WindowNS: 2000},
	}, nil)

	type out struct {
		res *loadgen.Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := loadgen.Run(loadgen.Config{
			Proto: loadgen.ProtoMemcache, Conns: 4, Pipeline: 8, Keys: 512,
			SetPct: 40, DelPct: 20, Duration: 30 * time.Second, Seed: 11,
		}, func() (net.Conn, error) {
			client, srvEnd := loadgen.MemPipe(64 << 10)
			if serr := w.srv.ServeConn(srvEnd); serr != nil {
				client.Close()
				return nil, serr
			}
			return client, nil
		})
		done <- out{res, err}
	}()

	// Let the load get deep into flight, then pull the plug gracefully.
	deadline := time.Now().Add(5 * time.Second)
	for snap(w.srv).Reqs < 1000 {
		if time.Now().After(deadline) {
			t.Fatal("load never ramped")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.srv.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}

	var o out
	select {
	case o = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("loadgen did not finish after drain")
	}
	if o.err != nil {
		t.Fatalf("loadgen: %v", o.err)
	}
	if o.res.Ops == 0 {
		t.Fatal("no ops completed before the drain")
	}
	// Every response the clients parsed must have been clean: the drain
	// path flushes acknowledged replies whole and never substitutes
	// error replies for in-flight work.
	if o.res.Errs != 0 {
		t.Fatalf("clients saw %d error replies across the drain", o.res.Errs)
	}
	if open := snap(w.srv).ConnsOpen; open != 0 {
		t.Fatalf("%d connections still open after drain", open)
	}

	// The drained process's store is intact: a fresh front end over the
	// same runtime serves reads and writes immediately.
	srv2, err := server.New(w.rt, w.store, server.Config{Proto: server.ProtoMemcache}, nil)
	if err != nil {
		t.Fatalf("re-serve after drain: %v", err)
	}
	defer srv2.Close()
	client, srvEnd := loadgen.MemPipe(1 << 14)
	if err := srv2.ServeConn(srvEnd); err != nil {
		t.Fatalf("ServeConn on re-served store: %v", err)
	}
	defer client.Close()
	runSteps(t, client, []step{
		{"set postdrain 0 0 2\r\n42\r\n", "STORED\r\n"},
		{"get postdrain\r\n", "VALUE postdrain 0 2\r\n42\r\nEND\r\n"},
	})
	t.Logf("drained after %d ops (%d reqs server-side)", o.res.Ops, snap(srv2).Reqs)
}
