package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a program in the textual IR syntax:
//
//	func push 2 {            // name, parameter count (params are r0, r1)
//	entry:
//	  lock r0
//	  boundary 0x101
//	  top = load r0 8        // top = mem[r0+8]
//	  node = alloc 16
//	  store node 0 r1        // mem[node+0] = r1
//	  store node 8 top
//	  store r0 8 node
//	  boundary 0x102
//	  unlock r0
//	  ret
//	}
//
// Identifiers name virtual registers; rN refers to register N directly
// (parameters are r0..rN-1). Labels end with ':'. Comments run from "//"
// or "#" to end of line. Numeric literals may be decimal or 0x-hex.
func Parse(src string) (*Program, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	prog := &Program{Funcs: map[string]*Func{}}
	for p.pos < len(p.lines) {
		line := p.next()
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "func" {
			return nil, p.errf("expected 'func', got %q", line)
		}
		if len(fields) != 4 || fields[3] != "{" {
			return nil, p.errf("bad func header %q (want: func name nparams {)", line)
		}
		nparams, err := strconv.Atoi(fields[2])
		if err != nil || nparams < 0 {
			return nil, p.errf("bad parameter count %q", fields[2])
		}
		f, err := p.parseFunc(fields[1], nparams)
		if err != nil {
			return nil, err
		}
		if _, dup := prog.Funcs[f.Name]; dup {
			return nil, fmt.Errorf("duplicate function %q", f.Name)
		}
		prog.Funcs[f.Name] = f
	}
	return prog, nil
}

// ParseFunc parses a source containing exactly one function.
func ParseFunc(src string) (*Func, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Funcs) != 1 {
		return nil, fmt.Errorf("expected exactly one function, got %d", len(prog.Funcs))
	}
	for _, f := range prog.Funcs {
		return f, nil
	}
	panic("unreachable")
}

type parser struct {
	lines []string
	pos   int
}

func (p *parser) next() string {
	line := p.lines[p.pos]
	p.pos++
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "#"); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.pos, fmt.Sprintf(format, args...))
}

type pendingTarget struct {
	block, idx, arg int
	label           string
}

func (p *parser) parseFunc(name string, nparams int) (*Func, error) {
	f := &Func{Name: name, NumParams: nparams, NumRegs: nparams,
		RegNames: map[Reg]string{}}
	regs := map[string]Reg{}
	for i := 0; i < nparams; i++ {
		regs[fmt.Sprintf("r%d", i)] = Reg(i)
	}
	labels := map[string]int{}
	var fixups []pendingTarget
	var cur *Block

	getReg := func(tok string, define bool) (Reg, error) {
		if r, ok := regs[tok]; ok {
			return r, nil
		}
		if strings.HasPrefix(tok, "r") {
			if n, err := strconv.Atoi(tok[1:]); err == nil {
				for n >= f.NumRegs {
					f.NumRegs++
				}
				r := Reg(n)
				regs[tok] = r
				return r, nil
			}
		}
		if !define {
			return 0, fmt.Errorf("use of undefined register %q", tok)
		}
		r := Reg(f.NumRegs)
		f.NumRegs++
		regs[tok] = r
		f.RegNames[r] = tok
		return r, nil
	}
	getVal := func(tok string) (Value, error) {
		if n, err := strconv.ParseUint(tok, 0, 64); err == nil {
			return Imm(n), nil
		}
		r, err := getReg(tok, false)
		if err != nil {
			return Value{}, err
		}
		return R(r), nil
	}
	getImm := func(tok string) (uint64, error) {
		return strconv.ParseUint(tok, 0, 64)
	}

	for p.pos < len(p.lines) {
		line := p.next()
		if line == "" {
			continue
		}
		if line == "}" {
			for _, fx := range fixups {
				t, ok := labels[fx.label]
				if !ok {
					return nil, fmt.Errorf("func %s: undefined label %q", name, fx.label)
				}
				f.Blocks[fx.block].Instrs[fx.idx].Targets[fx.arg] = t
			}
			if len(f.Blocks) == 0 {
				return nil, fmt.Errorf("func %s: empty body", name)
			}
			f.BuildCFG()
			return f, nil
		}
		if strings.HasSuffix(line, ":") {
			lbl := strings.TrimSuffix(line, ":")
			if _, dup := labels[lbl]; dup {
				return nil, p.errf("duplicate label %q", lbl)
			}
			cur = &Block{Index: len(f.Blocks), Name: lbl}
			labels[lbl] = cur.Index
			f.Blocks = append(f.Blocks, cur)
			continue
		}
		if cur == nil {
			cur = &Block{Index: 0, Name: "entry"}
			labels["entry"] = 0
			f.Blocks = append(f.Blocks, cur)
		}

		var dest Reg = NoReg
		rest := line
		if i := strings.Index(line, "="); i >= 0 {
			lhs := strings.TrimSpace(line[:i])
			if len(strings.Fields(lhs)) == 1 {
				r, err := getReg(lhs, true)
				if err != nil {
					return nil, p.errf("%v", err)
				}
				dest = r
				rest = strings.TrimSpace(line[i+1:])
			}
		}
		toks := strings.Fields(rest)
		if len(toks) == 0 {
			return nil, p.errf("empty instruction")
		}
		opName := toks[0]
		args := toks[1:]
		in := Instr{Dest: dest}

		var op Op = -1
		for o, n := range opNames {
			if n == opName {
				op = o
				break
			}
		}
		if op < 0 {
			return nil, p.errf("unknown op %q", opName)
		}
		in.Op = op

		wrongArgs := func(want string) error {
			return p.errf("%s: want %s, got %d operands", opName, want, len(args))
		}
		switch op {
		case OpConst:
			if len(args) != 1 || dest == NoReg {
				return nil, wrongArgs("dest = const imm")
			}
			imm, err := getImm(args[0])
			if err != nil {
				return nil, p.errf("bad immediate %q", args[0])
			}
			in.Imm = imm
		case OpMov, OpAlloc, OpSAlloc:
			if len(args) != 1 || dest == NoReg {
				return nil, wrongArgs("dest = op val")
			}
			v, err := getVal(args[0])
			if err != nil {
				return nil, p.errf("%v", err)
			}
			in.Args = []Value{v}
		case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor,
			OpShl, OpShr, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			if len(args) != 2 || dest == NoReg {
				return nil, wrongArgs("dest = op a b")
			}
			a, err := getVal(args[0])
			if err != nil {
				return nil, p.errf("%v", err)
			}
			b, err := getVal(args[1])
			if err != nil {
				return nil, p.errf("%v", err)
			}
			in.Args = []Value{a, b}
		case OpLoad:
			if len(args) != 2 || dest == NoReg {
				return nil, wrongArgs("dest = load base off")
			}
			base, err := getVal(args[0])
			if err != nil || base.IsImm {
				return nil, p.errf("load base must be a register")
			}
			off, err := getImm(args[1])
			if err != nil {
				return nil, p.errf("bad load offset %q", args[1])
			}
			in.Args = []Value{base}
			in.Imm = off
		case OpStore:
			if len(args) != 3 {
				return nil, wrongArgs("store base off val")
			}
			base, err := getVal(args[0])
			if err != nil || base.IsImm {
				return nil, p.errf("store base must be a register")
			}
			off, err := getImm(args[1])
			if err != nil {
				return nil, p.errf("bad store offset %q", args[1])
			}
			val, err := getVal(args[2])
			if err != nil {
				return nil, p.errf("%v", err)
			}
			in.Args = []Value{base, val}
			in.Imm = off
		case OpLock, OpUnlock, OpPrint:
			if len(args) != 1 {
				return nil, wrongArgs("op val")
			}
			v, err := getVal(args[0])
			if err != nil {
				return nil, p.errf("%v", err)
			}
			in.Args = []Value{v}
		case OpBeginDur, OpEndDur:
			if len(args) != 0 {
				return nil, wrongArgs("no operands")
			}
		case OpNewLock:
			if len(args) != 0 || dest == NoReg {
				return nil, wrongArgs("dest = newlock")
			}
		case OpBr:
			if len(args) != 3 {
				return nil, wrongArgs("br cond then else")
			}
			c, err := getVal(args[0])
			if err != nil {
				return nil, p.errf("%v", err)
			}
			in.Args = []Value{c}
			in.Targets = []int{-1, -1}
			fixups = append(fixups,
				pendingTarget{cur.Index, len(cur.Instrs), 0, args[1]},
				pendingTarget{cur.Index, len(cur.Instrs), 1, args[2]})
		case OpJmp:
			if len(args) != 1 {
				return nil, wrongArgs("jmp label")
			}
			in.Targets = []int{-1}
			fixups = append(fixups, pendingTarget{cur.Index, len(cur.Instrs), 0, args[0]})
		case OpRet:
			for _, a := range args {
				v, err := getVal(a)
				if err != nil {
					return nil, p.errf("%v", err)
				}
				in.Args = append(in.Args, v)
			}
		case OpBoundary:
			if len(args) < 1 {
				return nil, wrongArgs("boundary id [regs...]")
			}
			id, err := getImm(args[0])
			if err != nil {
				return nil, p.errf("bad region id %q", args[0])
			}
			in.Imm = id
			for _, a := range args[1:] {
				v, err := getVal(a)
				if err != nil {
					return nil, p.errf("%v", err)
				}
				in.Args = append(in.Args, v)
			}
		}
		cur.Instrs = append(cur.Instrs, in)
	}
	return nil, fmt.Errorf("func %s: missing closing }", name)
}
