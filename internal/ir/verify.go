package ir

import "fmt"

// Verify checks structural well-formedness of a function: branch targets
// in range, no instructions after a terminator, every register defined on
// every path before use, and consistent lock/durable depth at block entry
// across all predecessors. It returns the first problem found.
func Verify(f *Func) error {
	n := len(f.Blocks)
	if n == 0 {
		return fmt.Errorf("%s: no blocks", f.Name)
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			for _, t := range in.Targets {
				if t < 0 || t >= n {
					return fmt.Errorf("%s: %s.%d: branch target %d out of range", f.Name, b.Name, i, t)
				}
			}
			if in.Op.IsTerminator() && i != len(b.Instrs)-1 {
				return fmt.Errorf("%s: %s.%d: %s is not last in block", f.Name, b.Name, i, in.Op)
			}
			if in.Dest != NoReg && int(in.Dest) >= f.NumRegs {
				return fmt.Errorf("%s: %s.%d: dest r%d out of range", f.Name, b.Name, i, int(in.Dest))
			}
			for _, a := range in.Args {
				if !a.IsImm && int(a.Reg) >= f.NumRegs {
					return fmt.Errorf("%s: %s.%d: operand r%d out of range", f.Name, b.Name, i, int(a.Reg))
				}
			}
			// The parser enforces register bases; programs built in code
			// must satisfy the same invariant — the pre-decoded execution
			// stream stores the base as a bare register index.
			switch in.Op {
			case OpLoad:
				if len(in.Args) != 1 || in.Args[0].IsImm {
					return fmt.Errorf("%s: %s.%d: load base must be a register", f.Name, b.Name, i)
				}
			case OpStore:
				if len(in.Args) != 2 || in.Args[0].IsImm {
					return fmt.Errorf("%s: %s.%d: store base must be a register", f.Name, b.Name, i)
				}
			case OpBr:
				if len(in.Targets) != 2 || len(in.Args) != 1 {
					return fmt.Errorf("%s: %s.%d: br needs one condition and two targets", f.Name, b.Name, i)
				}
			case OpJmp:
				if len(in.Targets) != 1 {
					return fmt.Errorf("%s: %s.%d: jmp needs one target", f.Name, b.Name, i)
				}
			}
		}
	}
	if err := verifyDefinedBeforeUse(f); err != nil {
		return err
	}
	return verifyDepths(f)
}

// verifyDefinedBeforeUse runs a forward must-be-defined dataflow: entry
// defines the parameters; at joins, only registers defined on all paths
// remain defined.
func verifyDefinedBeforeUse(f *Func) error {
	n := len(f.Blocks)
	defIn := make([]map[Reg]bool, n)
	full := func() map[Reg]bool {
		m := make(map[Reg]bool, f.NumRegs)
		for r := 0; r < f.NumRegs; r++ {
			m[Reg(r)] = true
		}
		return m
	}
	for i := range defIn {
		defIn[i] = full() // top: everything defined (intersection semantics)
	}
	entry := make(map[Reg]bool, f.NumParams)
	for r := 0; r < f.NumParams; r++ {
		entry[Reg(r)] = true
	}
	defIn[0] = entry

	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			cur := make(map[Reg]bool, len(defIn[b.Index]))
			for r := range defIn[b.Index] {
				cur[r] = true
			}
			for i := range b.Instrs {
				in := &b.Instrs[i]
				for _, a := range in.Args {
					if !a.IsImm && !cur[a.Reg] {
						return fmt.Errorf("%s: %s.%d: r%d used before defined on some path",
							f.Name, b.Name, i, int(a.Reg))
					}
				}
				if in.Dest != NoReg {
					cur[in.Dest] = true
				}
			}
			for _, s := range b.Succs {
				if s == 0 {
					continue // entry's defIn is fixed to the parameters
				}
				// Intersect.
				before := len(defIn[s])
				for r := range defIn[s] {
					if !cur[r] {
						delete(defIn[s], r)
					}
				}
				if len(defIn[s]) != before {
					changed = true
				}
			}
		}
	}
	return nil
}

// verifyDepths ensures the lock depth and durable depth are the same at a
// block's entry regardless of the path taken, so FASE inference is
// well-defined (§IV-A assumes FASEs are confined to a single function).
func verifyDepths(f *Func) error {
	type depth struct{ lock, dur int }
	in := make([]depth, len(f.Blocks))
	seen := make([]bool, len(f.Blocks))
	seen[0] = true
	work := []int{0}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		d := in[bi]
		for i, instr := range f.Blocks[bi].Instrs {
			switch instr.Op {
			case OpLock:
				d.lock++
			case OpUnlock:
				d.lock--
				if d.lock < 0 {
					return fmt.Errorf("%s: %s.%d: unlock below depth 0", f.Name, f.Blocks[bi].Name, i)
				}
			case OpBeginDur:
				d.dur++
			case OpEndDur:
				d.dur--
				if d.dur < 0 {
					return fmt.Errorf("%s: %s.%d: end_durable below depth 0", f.Name, f.Blocks[bi].Name, i)
				}
			case OpRet:
				if d.lock != 0 || d.dur != 0 {
					return fmt.Errorf("%s: %s.%d: return inside a FASE (lock=%d durable=%d)",
						f.Name, f.Blocks[bi].Name, i, d.lock, d.dur)
				}
			}
		}
		for _, s := range f.Blocks[bi].Succs {
			if !seen[s] {
				seen[s] = true
				in[s] = d
				work = append(work, s)
			} else if in[s] != d {
				return fmt.Errorf("%s: block %s entered with inconsistent FASE depth (%v vs %v)",
					f.Name, f.Blocks[s].Name, in[s], d)
			}
		}
	}
	return nil
}
