// Package ir defines the mini intermediate representation the iDO
// compiler pipeline operates on: non-SSA three-address code over unlimited
// virtual registers, organized into basic blocks with an explicit CFG.
// Functions are written in a small textual syntax (see Parse) and
// processed by the analyses in internal/dataflow, internal/alias,
// internal/fase, and internal/idem, then instrumented by internal/compile
// and executed by internal/vm against simulated NVM.
//
// All values are 64-bit words. Memory operands are NVM byte addresses held
// in registers, with small constant offsets on load/store, which is what
// the basicAA-style alias analysis disambiguates.
package ir

import (
	"fmt"
	"strings"
)

// Reg is a virtual register index within a function.
type Reg int

// NoReg marks an absent destination register.
const NoReg Reg = -1

// Op enumerates instruction opcodes.
type Op int

// Opcodes. Arithmetic ops take two register-or-immediate operands;
// comparison ops yield 0 or 1.
const (
	OpConst Op = iota // dest = imm
	OpMov             // dest = src
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt // unsigned <
	OpLe
	OpGt
	OpGe
	OpLoad    // dest = mem[a0 + imm offset]
	OpStore   // mem[a0 + imm offset] = a1
	OpAlloc   // dest = nv_malloc(a0) — persistent heap allocation
	OpSAlloc  // dest = address of an NVM stack slot of a0 bytes
	OpNewLock // dest = holder address of a freshly created indirect lock
	OpLock    // lock the mutex whose holder address is a0
	OpUnlock  // unlock the mutex whose holder address is a0
	OpBeginDur
	OpEndDur
	OpBr    // if a0 != 0 goto Targets[0] else Targets[1]
	OpJmp   // goto Targets[0]
	OpRet   // return a0... (0 or more)
	OpPrint // debugging aid: emit a0 to the VM trace

	// OpBoundary is inserted by the iDO compiler at idempotent-region
	// boundaries. Imm holds the region ID; Args list the registers whose
	// logged slots may be stale and must be (re)logged if live (the
	// region's input set intersected with the predecessors' defs).
	OpBoundary
)

var opNames = map[Op]string{
	OpConst: "const", OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpDiv: "div", OpMod: "mod", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpEq: "eq", OpNe: "ne", OpLt: "lt",
	OpLe: "le", OpGt: "gt", OpGe: "ge", OpLoad: "load", OpStore: "store",
	OpAlloc: "alloc", OpSAlloc: "salloc", OpNewLock: "newlock",
	OpLock: "lock", OpUnlock: "unlock",
	OpBeginDur: "begin_durable", OpEndDur: "end_durable", OpBr: "br",
	OpJmp: "jmp", OpRet: "ret", OpPrint: "print", OpBoundary: "boundary",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsArith reports whether o is a pure register-to-register computation.
func (o Op) IsArith() bool { return o >= OpMov && o <= OpGe }

// IsTerminator reports whether o ends a basic block.
func (o Op) IsTerminator() bool { return o == OpBr || o == OpJmp || o == OpRet }

// Value is a register or immediate operand.
type Value struct {
	IsImm bool
	Imm   uint64
	Reg   Reg
}

// R makes a register operand.
func R(r Reg) Value { return Value{Reg: r} }

// Imm makes an immediate operand.
func Imm(v uint64) Value { return Value{IsImm: true, Imm: v} }

func (v Value) String() string {
	if v.IsImm {
		return fmt.Sprintf("%d", v.Imm)
	}
	return fmt.Sprintf("r%d", int(v.Reg))
}

// Instr is one three-address instruction.
type Instr struct {
	Op      Op
	Dest    Reg     // NoReg when the op produces no value
	Args    []Value // operand list
	Imm     uint64  // load/store offset, boundary region ID
	Targets []int   // successor block indices (br: [then, else]; jmp: [t])
}

// Uses appends the registers read by the instruction to out.
func (in *Instr) Uses(out []Reg) []Reg {
	for _, a := range in.Args {
		if !a.IsImm {
			out = append(out, a.Reg)
		}
	}
	return out
}

func (in *Instr) String() string {
	var b strings.Builder
	if in.Dest != NoReg {
		fmt.Fprintf(&b, "r%d = ", int(in.Dest))
	}
	b.WriteString(in.Op.String())
	switch in.Op {
	case OpConst:
		fmt.Fprintf(&b, " %d", in.Imm)
	case OpLoad:
		fmt.Fprintf(&b, " %s %d", in.Args[0], in.Imm)
	case OpStore:
		fmt.Fprintf(&b, " %s %d %s", in.Args[0], in.Imm, in.Args[1])
	case OpBr:
		fmt.Fprintf(&b, " %s b%d b%d", in.Args[0], in.Targets[0], in.Targets[1])
	case OpJmp:
		fmt.Fprintf(&b, " b%d", in.Targets[0])
	case OpBoundary:
		fmt.Fprintf(&b, " %#x", in.Imm)
		for _, a := range in.Args {
			fmt.Fprintf(&b, " %s", a)
		}
	default:
		for _, a := range in.Args {
			fmt.Fprintf(&b, " %s", a)
		}
	}
	return b.String()
}

// Block is a basic block.
type Block struct {
	Index  int
	Name   string
	Instrs []Instr
	Succs  []int
	Preds  []int
}

// Func is a function: parameters arrive in registers 0..NumParams-1.
type Func struct {
	Name      string
	NumParams int
	NumRegs   int
	Blocks    []*Block
	RegNames  map[Reg]string // for printing; may be nil
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// BuildCFG recomputes successor and predecessor edges from terminators.
// Blocks without an explicit terminator fall through to the next block.
func (f *Func) BuildCFG() {
	for _, b := range f.Blocks {
		b.Succs = b.Succs[:0]
		b.Preds = b.Preds[:0]
	}
	for i, b := range f.Blocks {
		if n := len(b.Instrs); n > 0 && b.Instrs[n-1].Op.IsTerminator() {
			last := &b.Instrs[n-1]
			if last.Op != OpRet {
				b.Succs = append(b.Succs, last.Targets...)
			}
		} else if i+1 < len(f.Blocks) {
			b.Succs = append(b.Succs, i+1)
		}
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			f.Blocks[s].Preds = append(f.Blocks[s].Preds, b.Index)
		}
	}
}

// String renders the function in parseable textual form.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s %d {\n", f.Name, f.NumParams)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Name)
		for i := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", printInstr(f, blk, &blk.Instrs[i]))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func printInstr(f *Func, _ *Block, in *Instr) string {
	s := in.String()
	// Replace block indices with labels for br/jmp.
	switch in.Op {
	case OpBr:
		return fmt.Sprintf("br %s %s %s", in.Args[0],
			f.Blocks[in.Targets[0]].Name, f.Blocks[in.Targets[1]].Name)
	case OpJmp:
		return fmt.Sprintf("jmp %s", f.Blocks[in.Targets[0]].Name)
	}
	return s
}

// Program is a set of functions by name.
type Program struct {
	Funcs map[string]*Func
}

// Loc addresses one instruction within a function.
type Loc struct {
	Block int
	Index int
}

// Less orders locations by block then index (not an execution order; used
// for deterministic iteration).
func (l Loc) Less(o Loc) bool {
	if l.Block != o.Block {
		return l.Block < o.Block
	}
	return l.Index < o.Index
}

func (l Loc) String() string { return fmt.Sprintf("b%d.%d", l.Block, l.Index) }
