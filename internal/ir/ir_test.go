package ir

import (
	"strings"
	"testing"
)

const pushSrc = `
func push 2 {
entry:
  lock r0
  top = load r0 8
  node = alloc 16
  store node 0 r1
  store node 8 top
  store r0 8 node
  unlock r0
  ret
}
`

func TestParsePush(t *testing.T) {
	f, err := ParseFunc(pushSrc)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "push" || f.NumParams != 2 {
		t.Fatalf("header: %s/%d", f.Name, f.NumParams)
	}
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	if got := len(f.Entry().Instrs); got != 8 {
		t.Fatalf("instrs = %d, want 8", got)
	}
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestParseBranchesAndLoop(t *testing.T) {
	src := `
func count 1 {
entry:
  i = const 0
  jmp loop
loop:
  c = lt i r0
  br c body done
body:
  i = add i 1
  jmp loop
done:
  ret i
}
`
	f, err := ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	loop := f.Blocks[1]
	if len(loop.Preds) != 2 {
		t.Fatalf("loop preds = %v", loop.Preds)
	}
	// Round trip through the printer.
	f2, err := ParseFunc(f.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, f.String())
	}
	if len(f2.Blocks) != len(f.Blocks) {
		t.Fatal("round trip changed block count")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"undefined label", "func f 0 {\nentry:\n  jmp nowhere\n}"},
		{"undefined reg", "func f 0 {\nentry:\n  x = add y 1\n  ret\n}"},
		{"bad op", "func f 0 {\nentry:\n  frobnicate r0\n}"},
		{"missing close", "func f 0 {\nentry:\n  ret\n"},
		{"dup label", "func f 0 {\na:\n  ret\na:\n  ret\n}"},
		{"dup func", "func f 0 {\nentry:\n ret\n}\nfunc f 0 {\nentry:\n ret\n}"},
		{"store imm base", "func f 0 {\nentry:\n  store 5 0 3\n  ret\n}"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: parse succeeded", c.name)
		}
	}
}

func TestVerifyCatchesUseBeforeDef(t *testing.T) {
	src := `
func f 1 {
entry:
  br r0 a b
a:
  x = const 1
  jmp join
b:
  jmp join
join:
  y = add x 1
  ret y
}
`
	f, err := ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "used before defined") {
		t.Fatalf("verify = %v, want use-before-def error", err)
	}
}

func TestVerifyCatchesInconsistentLockDepth(t *testing.T) {
	src := `
func f 1 {
entry:
  br r0 a b
a:
  lock r0
  jmp join
b:
  jmp join
join:
  unlock r0
  ret
}
`
	f, err := ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(f); err == nil {
		t.Fatal("verify accepted inconsistent lock depth")
	}
}

func TestVerifyCatchesReturnInsideFASE(t *testing.T) {
	src := `
func f 1 {
entry:
  lock r0
  ret
}
`
	f, err := ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(f); err == nil {
		t.Fatal("verify accepted return inside FASE")
	}
}

func TestFallthroughBlocks(t *testing.T) {
	src := `
func f 0 {
a:
  x = const 1
b:
  y = add x 1
  ret y
}
`
	f, err := ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks[0].Succs) != 1 || f.Blocks[0].Succs[0] != 1 {
		t.Fatalf("fallthrough succs = %v", f.Blocks[0].Succs)
	}
}

func TestBoundaryParse(t *testing.T) {
	src := `
func f 1 {
entry:
  begin_durable
  boundary 0x42 r0
  store r0 0 7
  end_durable
  ret
}
`
	f, err := ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	in := f.Entry().Instrs[1]
	if in.Op != OpBoundary || in.Imm != 0x42 || len(in.Args) != 1 {
		t.Fatalf("boundary parsed as %+v", in)
	}
}

func TestHexAndComments(t *testing.T) {
	src := `
func f 0 {
entry:
  x = const 0xFF  // comment
  # full line comment
  ret x
}
`
	f, err := ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Entry().Instrs[0].Imm != 255 {
		t.Fatal("hex literal mis-parsed")
	}
}
