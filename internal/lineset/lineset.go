// Package lineset provides the dirty-line set both runtimes use to track
// the distinct cache lines a region dirties, preserving insertion order
// for the boundary write-back (§III-A step 1).
//
// Most dynamic regions touch a handful of lines (Fig. 8: the vast
// majority perform ≤2 stores), so membership starts as a linear scan of a
// short list. A region that keeps dirtying new lines — a hashmap rehash,
// a bulk transfer — engages an epoch-stamped open-addressed table: each
// slot carries the epoch in which it was written, so Reset is one epoch
// increment instead of an O(table) clear, and a single wide region does
// not tax every later boundary. Per-store tracking is O(1) either way,
// which removes the quadratic cliff the VM's linear dirty list hit on
// large regions.
package lineset

// small is the list length beyond which the set engages the hash table.
// Scanning up to this many entries is cheaper than hashing.
const small = 16

// slot is one table entry: the line address stamped with the epoch that
// wrote it. A slot whose epoch differs from the set's is empty.
type slot struct {
	line  uint64
	epoch uint64
}

// Set tracks distinct LineSize-aligned addresses in insertion order.
// The zero value is ready to use. Not safe for concurrent use (each
// runtime thread owns one).
type Set struct {
	list  []uint64 // every tracked line, insertion order
	tab   []slot   // epoch-stamped open-addressed table; nil while small
	mask  uint64   // len(tab)-1
	epoch uint64   // current generation; stale slots are free
}

// hash mixes a 64-aligned line address into a table slot.
func hash(line uint64) uint64 {
	return (line >> 6) * 0x9E3779B97F4A7C15
}

// Add inserts line (a line-aligned address) if not already present.
func (s *Set) Add(line uint64) {
	if s.tab == nil {
		for _, l := range s.list {
			if l == line {
				return
			}
		}
		s.list = append(s.list, line)
		if len(s.list) > small {
			s.grow()
		}
		return
	}
	i := hash(line) & s.mask
	for {
		e := &s.tab[i]
		if e.epoch != s.epoch {
			e.line, e.epoch = line, s.epoch
			s.list = append(s.list, line)
			if uint64(len(s.list))*4 > (s.mask+1)*3 {
				s.grow()
			}
			return
		}
		if e.line == line {
			return
		}
		i = (i + 1) & s.mask
	}
}

// grow (re)builds the table at double capacity (or engages it at the
// initial size) and rehashes the list under the current epoch.
func (s *Set) grow() {
	n := uint64(64)
	if s.tab != nil {
		n = (s.mask + 1) * 2
	}
	s.tab = make([]slot, n)
	s.mask = n - 1
	if s.epoch == 0 {
		s.epoch = 1 // fresh slots have epoch 0; never collide with it
	}
	for _, line := range s.list {
		i := hash(line) & s.mask
		for s.tab[i].epoch == s.epoch {
			i = (i + 1) & s.mask
		}
		s.tab[i] = slot{line: line, epoch: s.epoch}
	}
}

// Len reports the number of tracked lines.
func (s *Set) Len() int { return len(s.list) }

// Lines returns the tracked lines in insertion order. The slice aliases
// internal storage and is invalidated by Reset.
func (s *Set) Lines() []uint64 { return s.list }

// Reset empties the set in O(1): the epoch advances, invalidating every
// table slot at once. The list's capacity and the table are retained, so
// a workload alternating wide and narrow regions neither reallocates nor
// re-clears.
func (s *Set) Reset() {
	s.list = s.list[:0]
	if s.tab == nil {
		return
	}
	s.epoch++
	if s.epoch == 0 { // wrapped after 2^64 resets: clear and restart
		clear(s.tab)
		s.epoch = 1
	}
}
