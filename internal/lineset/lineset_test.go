package lineset

import (
	"math/rand"
	"testing"
)

func TestSetSmall(t *testing.T) {
	var s Set
	s.Add(64)
	s.Add(128)
	s.Add(64)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	got := s.Lines()
	if got[0] != 64 || got[1] != 128 {
		t.Fatalf("Lines = %v, want [64 128]", got)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d", s.Len())
	}
	s.Add(192)
	if s.Len() != 1 || s.Lines()[0] != 192 {
		t.Fatalf("post-reset Lines = %v", s.Lines())
	}
}

func TestSetLargeAndEpochReuse(t *testing.T) {
	var s Set
	const n = 5000
	// Three generations through the same set: stale epochs must never
	// leak earlier generations' membership.
	for gen := uint64(0); gen < 3; gen++ {
		base := gen * 1 << 20
		for i := uint64(0); i < n; i++ {
			line := base + i*64
			s.Add(line)
			s.Add(line) // duplicate insert must be a no-op
		}
		if s.Len() != n {
			t.Fatalf("gen %d: Len = %d, want %d", gen, s.Len(), n)
		}
		seen := map[uint64]bool{}
		for _, l := range s.Lines() {
			if seen[l] {
				t.Fatalf("gen %d: duplicate line %#x", gen, l)
			}
			seen[l] = true
			if l < base || l >= base+n*64 {
				t.Fatalf("gen %d: stale line %#x leaked across Reset", gen, l)
			}
		}
		s.Reset()
	}
}

func TestSetInsertionOrderAcrossGrowth(t *testing.T) {
	var s Set
	var want []uint64
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		line := uint64(rng.Intn(400)) * 64
		dup := false
		for _, w := range want {
			if w == line {
				dup = true
				break
			}
		}
		if !dup {
			want = append(want, line)
		}
		s.Add(line)
	}
	got := s.Lines()
	if len(got) != len(want) {
		t.Fatalf("Len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Lines[%d] = %#x, want %#x (insertion order broken)", i, got[i], want[i])
		}
	}
}

func TestSetZeroLine(t *testing.T) {
	// Line 0 is a valid address; the epoch stamp (not a tag bit) must
	// keep it distinguishable from an empty slot even in the table.
	var s Set
	for i := uint64(0); i < 100; i++ {
		s.Add(i * 64)
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	s.Add(0)
	if s.Len() != 100 {
		t.Fatalf("re-adding line 0 grew the set to %d", s.Len())
	}
	s.Reset()
	s.Add(0)
	if s.Len() != 1 || s.Lines()[0] != 0 {
		t.Fatalf("line 0 lost after Reset: %v", s.Lines())
	}
}

// BenchmarkSetAddWide measures per-Add cost on a region dirtying many
// distinct lines — the hashmap-rehash shape that was quadratic with a
// linear dirty list.
func BenchmarkSetAddWide(b *testing.B) {
	var s Set
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i%65536) * 64)
		if i%65536 == 65535 {
			s.Reset()
		}
	}
}

// BenchmarkSetResetWide measures Reset after a wide region: epoch
// stamping makes it O(1) regardless of table size.
func BenchmarkSetResetWide(b *testing.B) {
	var s Set
	for i := uint64(0); i < 1<<14; i++ {
		s.Add(i * 64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		s.Add(uint64(i) * 64) // keep the set non-degenerate
	}
}
