package alias

import (
	"testing"

	"github.com/ido-nvm/ido/internal/ir"
)

func analyze(t *testing.T, src string) (*ir.Func, *Analysis) {
	t.Helper()
	f, err := ir.ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	return f, Analyze(f)
}

func TestDistinctAllocSitesDoNotAlias(t *testing.T) {
	_, a := analyze(t, `
func f 0 {
entry:
  p = alloc 16
  q = alloc 16
  store p 0 1
  store q 0 2
  x = load p 0
  ret x
}
`)
	storeP := ir.Loc{Block: 0, Index: 2}
	storeQ := ir.Loc{Block: 0, Index: 3}
	loadP := ir.Loc{Block: 0, Index: 4}
	if a.MayAliasAt(storeP, storeQ) {
		t.Fatal("distinct allocs alias")
	}
	if !a.MayAliasAt(storeP, loadP) {
		t.Fatal("same alloc same offset must alias")
	}
}

func TestSameBaseDifferentOffsets(t *testing.T) {
	_, a := analyze(t, `
func f 1 {
entry:
  store r0 0 1
  store r0 8 2
  store r0 4 3
  ret
}
`)
	s0 := ir.Loc{Block: 0, Index: 0}
	s8 := ir.Loc{Block: 0, Index: 1}
	s4 := ir.Loc{Block: 0, Index: 2}
	if a.MayAliasAt(s0, s8) {
		t.Fatal("[0,8) and [8,16) alias")
	}
	if !a.MayAliasAt(s0, s4) || !a.MayAliasAt(s4, s8) {
		t.Fatal("overlapping offsets must alias")
	}
}

func TestParamsMayAlias(t *testing.T) {
	_, a := analyze(t, `
func f 2 {
entry:
  store r0 0 1
  store r1 0 2
  ret
}
`)
	if !a.MayAliasAt(ir.Loc{Block: 0, Index: 0}, ir.Loc{Block: 0, Index: 1}) {
		t.Fatal("two params must conservatively alias")
	}
}

func TestAllocDoesNotAliasParam(t *testing.T) {
	_, a := analyze(t, `
func f 1 {
entry:
  p = alloc 8
  store p 0 1
  store r0 0 2
  ret
}
`)
	if a.MayAliasAt(ir.Loc{Block: 0, Index: 1}, ir.Loc{Block: 0, Index: 2}) {
		t.Fatal("fresh alloc aliases a pre-existing param pointer")
	}
}

func TestPointerArithmeticTracked(t *testing.T) {
	_, a := analyze(t, `
func f 1 {
entry:
  p = add r0 8
  store p 0 1
  store r0 8 2
  store r0 0 3
  ret
}
`)
	sP := ir.Loc{Block: 0, Index: 1} // r0+8
	s8 := ir.Loc{Block: 0, Index: 2} // r0+8
	s0 := ir.Loc{Block: 0, Index: 3} // r0+0
	if !a.MayAliasAt(sP, s8) {
		t.Fatal("r0+8 via add must alias store r0 8")
	}
	if a.MayAliasAt(sP, s0) {
		t.Fatal("r0+8 aliases r0+0")
	}
}

func TestLoadedPointerIsUnknown(t *testing.T) {
	_, a := analyze(t, `
func f 1 {
entry:
  p = load r0 0
  q = alloc 8
  store p 0 1
  store q 0 2
  ret
}
`)
	sp := ir.Loc{Block: 0, Index: 2}
	if got := a.AddrAt(sp); got.Kind != Unknown {
		t.Fatalf("loaded pointer kind = %v, want Unknown", got.Kind)
	}
	// Unknown vs fresh alloc: basicAA can still disambiguate? No — our
	// Unknown aliases everything, including allocs (conservative).
	sq := ir.Loc{Block: 0, Index: 3}
	if !a.MayAliasAt(sp, sq) {
		t.Fatal("unknown must alias alloc conservatively")
	}
}

func TestJoinConflictingProvenanceBecomesUnknown(t *testing.T) {
	_, a := analyze(t, `
func f 2 {
entry:
  br r1 a b
a:
  p = mov r0
  jmp join
b:
  p = alloc 8
  jmp join
join:
  store p 0 1
  ret
}
`)
	if got := a.AddrAt(ir.Loc{Block: 3, Index: 0}); got.Kind != Unknown {
		t.Fatalf("join of param and alloc = %v, want Unknown", got.Kind)
	}
}

func TestLoopCarriedAllocSiteAliasesItself(t *testing.T) {
	_, a := analyze(t, `
func f 1 {
entry:
  i = const 0
  jmp loop
loop:
  p = alloc 8
  store p 0 i
  i = add i 1
  c = lt i r0
  br c loop done
done:
  ret
}
`)
	s := ir.Loc{Block: 1, Index: 1}
	if !a.MayAliasAt(s, s) {
		t.Fatal("an alloc site must alias itself across iterations")
	}
}

func TestConstAddresses(t *testing.T) {
	_, a := analyze(t, `
func f 0 {
entry:
  p = const 4096
  q = const 4104
  store p 0 1
  store q 0 2
  ret
}
`)
	if a.MayAliasAt(ir.Loc{Block: 0, Index: 2}, ir.Loc{Block: 0, Index: 3}) {
		t.Fatal("distinct constant addresses alias")
	}
}

func TestEscapeRefinement(t *testing.T) {
	// An unknown-pointer load that executes BEFORE a fresh allocation's
	// address escapes cannot alias it; after escape, it can.
	a1 := Addr{Kind: Unknown}
	node := Addr{Kind: Alloc, ID: 3}
	if MayAliasEscape(a1, node, nil, nil) {
		t.Fatal("unknown load aliases un-escaped alloc")
	}
	if !MayAliasEscape(a1, node, []int{3}, nil) {
		t.Fatal("unknown load must alias escaped alloc")
	}
	// Symmetric: unknown store vs fresh-alloc load.
	if MayAliasEscape(node, a1, nil, nil) {
		t.Fatal("unknown store aliases un-escaped alloc")
	}
	if !MayAliasEscape(node, a1, nil, []int{3}) {
		t.Fatal("unknown store must alias escaped alloc")
	}
	// Known-vs-known falls through to MayAlias.
	if MayAliasEscape(Addr{Kind: Alloc, ID: 1}, Addr{Kind: Alloc, ID: 2}, nil, nil) {
		t.Fatal("distinct allocs alias")
	}
}

func TestStoredSite(t *testing.T) {
	_, a := analyze(t, `
func f 1 {
entry:
  p = alloc 16
  store r0 0 p
  store r0 8 7
  ret
}
`)
	if site, ok := a.StoredSite(ir.Loc{Block: 0, Index: 1}); !ok || site != 0 {
		t.Fatalf("StoredSite = %d,%v", site, ok)
	}
	if _, ok := a.StoredSite(ir.Loc{Block: 0, Index: 2}); ok {
		t.Fatal("immediate store reported a site")
	}
}
