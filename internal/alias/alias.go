// Package alias implements a basicAA-style may-alias analysis for the
// mini-IR, mirroring the LLVM analysis the iDO compiler relies on
// (§IV-A(b)). It tracks the provenance of address values — function
// parameters, distinct allocation sites, distinct stack slots, absolute
// constants — plus constant offsets, and answers conservative may-alias
// queries for load/store pairs. Like basicAA it is deliberately simple:
// anything it cannot prove distinct may alias.
package alias

import (
	"github.com/ido-nvm/ido/internal/ir"
)

// BaseKind classifies the provenance of an address.
type BaseKind int

// Provenance kinds.
const (
	Unknown BaseKind = iota // no information: aliases everything
	Param                   // the value of parameter i at function entry
	Alloc                   // a heap allocation site (fresh memory)
	SAlloc                  // a stack slot site (fresh per execution)
	Const                   // an absolute address
)

// Addr is an abstract address: a base plus a constant byte offset.
type Addr struct {
	Kind BaseKind
	// ID identifies the base: the parameter index for Param, an
	// allocation-site ordinal for Alloc/SAlloc, unused otherwise.
	ID  int
	Off uint64 // constant offset from the base (absolute value for Const)
}

// unknownAddr is the top element.
var unknownAddr = Addr{Kind: Unknown}

func (a Addr) eq(b Addr) bool { return a == b }

// MayAlias reports whether two 8-byte accesses at the given abstract
// addresses can overlap.
func MayAlias(a, b Addr) bool {
	const size = 8
	if a.Kind == Unknown || b.Kind == Unknown {
		return true
	}
	sameBase := a.Kind == b.Kind && a.ID == b.ID
	if sameBase {
		return a.Off < b.Off+size && b.Off < a.Off+size
	}
	// Distinct fresh memory never aliases anything else.
	if a.Kind == Alloc || b.Kind == Alloc || a.Kind == SAlloc || b.Kind == SAlloc {
		return false
	}
	// Param vs Param (different params), Param vs Const: unknown aliasing.
	return true
}

// Analysis holds per-instruction abstract addresses for the memory
// operations of one function.
type Analysis struct {
	f *ir.Func
	// At[b][i] is the abstract address of the memory operand of
	// instruction i in block b; only meaningful for OpLoad/OpStore.
	At [][]Addr
	// Val[b][i] is the provenance of the VALUE operand of the store at
	// instruction i in block b (unknownAddr elsewhere). A store whose
	// value carries Alloc/SAlloc provenance is the point where that
	// allocation's address escapes to memory — before it, no pointer
	// loaded from memory can refer to the allocation, which is the
	// noalias-malloc refinement LLVM's basicAA applies.
	Val [][]Addr
}

// Analyze runs the forward provenance analysis to a fixpoint.
func Analyze(f *ir.Func) *Analysis {
	n := len(f.Blocks)
	// envIn[b][r] is the abstract address register r holds at b's entry.
	envIn := make([][]Addr, n)
	for i := range envIn {
		envIn[i] = nil // nil = not yet visited
	}
	entry := make([]Addr, f.NumRegs)
	for r := range entry {
		entry[r] = unknownAddr
	}
	for i := 0; i < f.NumParams; i++ {
		entry[i] = Addr{Kind: Param, ID: i}
	}
	envIn[0] = entry

	// Number allocation sites deterministically.
	siteID := map[ir.Loc]int{}
	next := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			op := b.Instrs[i].Op
			if op == ir.OpAlloc || op == ir.OpSAlloc || op == ir.OpNewLock {
				siteID[ir.Loc{Block: b.Index, Index: i}] = next
				next++
			}
		}
	}

	merge := func(dst, src []Addr) ([]Addr, bool) {
		if dst == nil {
			out := make([]Addr, len(src))
			copy(out, src)
			return out, true
		}
		changed := false
		for i := range dst {
			if !dst[i].eq(src[i]) && dst[i].Kind != Unknown {
				dst[i] = unknownAddr
				changed = true
			}
		}
		return dst, changed
	}

	work := []int{0}
	inWork := make([]bool, n)
	inWork[0] = true
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		env := make([]Addr, f.NumRegs)
		copy(env, envIn[bi])
		b := f.Blocks[bi]
		for i := range b.Instrs {
			transfer(&b.Instrs[i], env, siteID, ir.Loc{Block: bi, Index: i})
		}
		for _, s := range b.Succs {
			var changed bool
			envIn[s], changed = merge(envIn[s], env)
			if changed && !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}

	// Record per-instruction memory addresses and store-value provenance.
	a := &Analysis{f: f, At: make([][]Addr, n), Val: make([][]Addr, n)}
	for bi, b := range f.Blocks {
		a.At[bi] = make([]Addr, len(b.Instrs))
		a.Val[bi] = make([]Addr, len(b.Instrs))
		for i := range a.Val[bi] {
			a.Val[bi][i] = unknownAddr
		}
		if envIn[bi] == nil {
			for i := range a.At[bi] {
				a.At[bi][i] = unknownAddr
			}
			continue
		}
		env := make([]Addr, f.NumRegs)
		copy(env, envIn[bi])
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == ir.OpLoad || in.Op == ir.OpStore {
				base := env[in.Args[0].Reg]
				if base.Kind == Unknown {
					a.At[bi][i] = unknownAddr
				} else {
					a.At[bi][i] = Addr{Kind: base.Kind, ID: base.ID, Off: base.Off + in.Imm}
				}
			}
			if in.Op == ir.OpStore && !in.Args[1].IsImm {
				a.Val[bi][i] = env[in.Args[1].Reg]
			}
			transfer(in, env, siteID, ir.Loc{Block: bi, Index: i})
		}
	}
	return a
}

// transfer updates the abstract environment for one instruction.
func transfer(in *ir.Instr, env []Addr, siteID map[ir.Loc]int, loc ir.Loc) {
	val := func(v ir.Value) Addr {
		if v.IsImm {
			return Addr{Kind: Const, Off: v.Imm}
		}
		return env[v.Reg]
	}
	if in.Dest == ir.NoReg {
		return
	}
	switch in.Op {
	case ir.OpConst:
		env[in.Dest] = Addr{Kind: Const, Off: in.Imm}
	case ir.OpMov:
		env[in.Dest] = val(in.Args[0])
	case ir.OpAdd:
		a, b := val(in.Args[0]), val(in.Args[1])
		switch {
		case a.Kind != Unknown && b.Kind == Const:
			env[in.Dest] = Addr{Kind: a.Kind, ID: a.ID, Off: a.Off + b.Off}
		case b.Kind != Unknown && a.Kind == Const:
			env[in.Dest] = Addr{Kind: b.Kind, ID: b.ID, Off: b.Off + a.Off}
		default:
			env[in.Dest] = unknownAddr
		}
	case ir.OpSub:
		a, b := val(in.Args[0]), val(in.Args[1])
		if a.Kind != Unknown && b.Kind == Const {
			env[in.Dest] = Addr{Kind: a.Kind, ID: a.ID, Off: a.Off - b.Off}
		} else {
			env[in.Dest] = unknownAddr
		}
	case ir.OpAlloc, ir.OpNewLock:
		env[in.Dest] = Addr{Kind: Alloc, ID: siteID[loc]}
	case ir.OpSAlloc:
		env[in.Dest] = Addr{Kind: SAlloc, ID: siteID[loc]}
	default:
		env[in.Dest] = unknownAddr
	}
}

// AddrAt returns the abstract address of the memory operand of the
// load/store at loc.
func (a *Analysis) AddrAt(loc ir.Loc) Addr { return a.At[loc.Block][loc.Index] }

// StoredSite returns the allocation-site ID whose address the store at
// loc writes to memory (the escape point), or ok=false when the stored
// value carries no fresh-allocation provenance.
func (a *Analysis) StoredSite(loc ir.Loc) (int, bool) {
	v := a.Val[loc.Block][loc.Index]
	if v.Kind == Alloc || v.Kind == SAlloc {
		return v.ID, true
	}
	return 0, false
}

// MayAliasAt reports whether the memory operations at the two locations
// may touch overlapping bytes.
func (a *Analysis) MayAliasAt(l1, l2 ir.Loc) bool {
	return MayAlias(a.AddrAt(l1), a.AddrAt(l2))
}

// fresh reports whether the address is a fresh allocation of this
// function (heap, stack slot, or lock holder).
func fresh(x Addr) bool { return x.Kind == Alloc || x.Kind == SAlloc }

// MayAliasEscape is MayAlias refined with escape information: an access
// through an Unknown pointer can only touch a fresh allocation whose
// address had already escaped to memory at the time of that access.
// escA/escB list the allocation sites escaped before the respective
// accesses executed.
func MayAliasEscape(a, b Addr, escA, escB []int) bool {
	if a.Kind == Unknown && fresh(b) {
		return containsSite(escA, b.ID)
	}
	if b.Kind == Unknown && fresh(a) {
		return containsSite(escB, a.ID)
	}
	return MayAlias(a, b)
}

func containsSite(s []int, id int) bool {
	for _, x := range s {
		if x == id {
			return true
		}
	}
	return false
}
