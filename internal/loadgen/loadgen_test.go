package loadgen

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"strconv"
	"testing"
	"time"
)

// ---- MemPipe ----

func TestMemPipeRoundTrip(t *testing.T) {
	a, b := MemPipe(8) // tiny capacity so the ring wraps many times
	const msg = "the quick brown fox jumps over the lazy dog"
	errc := make(chan error, 1)
	go func() {
		_, err := a.Write([]byte(msg))
		errc <- err
	}()
	got := make([]byte, 0, len(msg))
	buf := make([]byte, 5)
	for len(got) < len(msg) {
		n, err := b.Read(buf)
		if err != nil {
			t.Fatalf("read: %v (got %q)", err, got)
		}
		got = append(got, buf[:n]...)
	}
	if string(got) != msg {
		t.Fatalf("round trip corrupted: %q", got)
	}
	if err := <-errc; err != nil {
		t.Fatalf("write: %v", err)
	}
}

func TestMemPipeCloseSemantics(t *testing.T) {
	a, b := MemPipe(64)
	if _, err := a.Write([]byte("tail")); err != nil {
		t.Fatalf("write: %v", err)
	}
	a.Close()
	// Buffered bytes stay readable after the writer closes...
	buf := make([]byte, 16)
	n, err := b.Read(buf)
	if err != nil || string(buf[:n]) != "tail" {
		t.Fatalf("drain after close: n=%d err=%v", n, err)
	}
	// ...then EOF, not a hang.
	if _, err := b.Read(buf); err != io.EOF {
		t.Fatalf("drained read: want io.EOF, got %v", err)
	}
	// Writes into a closed pipe fail immediately.
	if _, err := b.Write([]byte("x")); err == nil {
		t.Fatal("write after peer close succeeded")
	}
}

func TestMemPipeCloseWakesBlockedReader(t *testing.T) {
	a, b := MemPipe(16)
	done := make(chan error, 1)
	go func() {
		_, err := b.Read(make([]byte, 1)) // blocks: nothing written
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if err != io.EOF {
			t.Fatalf("blocked read after close: want io.EOF, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked reader not woken by close")
	}
}

// ---- key formatting ----

func TestLoadgenAppendKey(t *testing.T) {
	if got := string(AppendKey(nil, 0)); got != "k0000000" {
		t.Fatalf("key 0: %q", got)
	}
	if got := string(AppendKey(nil, 0xABCDEF1)); got != "kabcdef1" {
		t.Fatalf("key 0xABCDEF1: %q", got)
	}
	// 8 bytes always (the RESP store caps keys at one word).
	seen := map[string]bool{}
	for k := uint64(0); k < 512; k++ {
		s := string(AppendKey(nil, k))
		if len(s) != 8 {
			t.Fatalf("key %d: length %d", k, len(s))
		}
		if seen[s] {
			t.Fatalf("key %d: collision on %q", k, s)
		}
		seen[s] = true
	}
}

// ---- convergence checker ----

func TestLoadgenExplainable(t *testing.T) {
	set := func(v uint64) KeyOp { return KeyOp{Val: v} }
	del := KeyOp{Del: true}
	cases := []struct {
		name    string
		hist    KeyHist
		present bool
		val     uint64
		want    bool
	}{
		{"empty history, absent", KeyHist{}, false, 0, true},
		{"empty history, phantom value", KeyHist{}, true, 7, false},
		{"unacked set may be absent", KeyHist{Ops: []KeyOp{set(1)}}, false, 0, true},
		{"unacked set may be applied", KeyHist{Ops: []KeyOp{set(1)}}, true, 1, true},
		{"acked set must be present", KeyHist{Ops: []KeyOp{set(1)}, Acked: 1}, false, 0, false},
		{"acked set, exact value", KeyHist{Ops: []KeyOp{set(1)}, Acked: 1}, true, 1, true},
		{"torn value", KeyHist{Ops: []KeyOp{set(1), set(2)}, Acked: 2}, true, 1, false},
		{"unacked tail optional", KeyHist{Ops: []KeyOp{set(1), set(2)}, Acked: 1}, true, 1, true},
		{"unacked tail applied", KeyHist{Ops: []KeyOp{set(1), set(2)}, Acked: 1}, true, 2, true},
		{"acked delete: resurrection", KeyHist{Ops: []KeyOp{set(1), del}, Acked: 2}, true, 1, false},
		{"acked delete, absent", KeyHist{Ops: []KeyOp{set(1), del}, Acked: 2}, false, 0, true},
		{"lost acked write", KeyHist{Ops: []KeyOp{del, set(3)}, Acked: 2}, false, 0, false},
		{"stale pre-acked state", KeyHist{Ops: []KeyOp{set(1), set(2), set(3)}, Acked: 2}, true, 1, false},
	}
	for _, tc := range cases {
		if got := tc.hist.Explainable(tc.present, tc.val); got != tc.want {
			t.Errorf("%s: Explainable(%v, %d) = %v, want %v",
				tc.name, tc.present, tc.val, got, tc.want)
		}
	}
}

// ---- Run against a miniature in-test server ----

// miniServe speaks just enough of each protocol to ack every request:
// SETs are stored, GETs answer from the map (so hit accounting is
// checked end to end), DELETEs always ack.
func miniServe(t *testing.T, proto Proto, nc io.ReadWriteCloser) {
	t.Helper()
	defer nc.Close()
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)
	store := map[string]string{}
	line := func() ([]byte, bool) {
		l, err := br.ReadSlice('\n')
		if err != nil {
			return nil, false
		}
		return bytes.TrimRight(l, "\r\n"), true
	}
	for {
		l, ok := line()
		if !ok {
			return
		}
		if proto == ProtoMemcache {
			switch {
			case bytes.HasPrefix(l, []byte("get ")):
				for _, k := range bytes.Fields(l[4:]) {
					if v, hit := store[string(k)]; hit {
						bw.WriteString("VALUE " + string(k) + " 0 " +
							strconv.Itoa(len(v)) + "\r\n" + v + "\r\n")
					}
				}
				bw.WriteString("END\r\n")
			case bytes.HasPrefix(l, []byte("set ")):
				f := bytes.Fields(l)
				data, ok := line()
				if !ok || len(f) != 5 {
					return
				}
				store[string(f[1])] = string(data)
				bw.WriteString("STORED\r\n")
			case bytes.HasPrefix(l, []byte("delete ")):
				delete(store, string(l[7:]))
				bw.WriteString("DELETED\r\n")
			default:
				return
			}
		} else {
			// RESP array: *N then N bulk strings.
			n, err := strconv.Atoi(string(l[1:]))
			if err != nil || l[0] != '*' {
				return
			}
			args := make([]string, 0, n)
			for i := 0; i < n; i++ {
				if _, ok := line(); !ok { // $len header
					return
				}
				data, ok := line()
				if !ok {
					return
				}
				args = append(args, string(data))
			}
			switch args[0] {
			case "GET":
				if v, hit := store[args[1]]; hit {
					bw.WriteString("$" + strconv.Itoa(len(v)) + "\r\n" + v + "\r\n")
				} else {
					bw.WriteString("$-1\r\n")
				}
			case "MGET":
				bw.WriteString("*" + strconv.Itoa(len(args)-1) + "\r\n")
				for _, k := range args[1:] {
					if v, hit := store[k]; hit {
						bw.WriteString("$" + strconv.Itoa(len(v)) + "\r\n" + v + "\r\n")
					} else {
						bw.WriteString("$-1\r\n")
					}
				}
			case "SET":
				store[args[1]] = args[2]
				bw.WriteString("+OK\r\n")
			case "DEL":
				delete(store, args[1])
				bw.WriteString(":1\r\n")
			default:
				return
			}
		}
		if br.Buffered() == 0 {
			if bw.Flush() != nil {
				return
			}
		}
	}
}

func testLoadgenRun(t *testing.T, proto Proto) {
	cfg := Config{
		Proto:    proto,
		Conns:    4,
		Pipeline: 8,
		Keys:     64,
		SetPct:   40,
		DelPct:   20,
		Ops:      200, // per connection
		Seed:     42,
		Track:    true,
	}
	res, err := Run(cfg, func() (net.Conn, error) {
		client, srvEnd := MemPipe(32 << 10)
		go miniServe(t, proto, srvEnd)
		return client, nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := uint64(cfg.Conns) * cfg.Ops; res.Ops != want {
		t.Fatalf("ops: got %d, want %d", res.Ops, want)
	}
	if res.Errs != 0 {
		t.Fatalf("errs: %d", res.Errs)
	}
	if res.Hits == 0 || res.Misses == 0 {
		t.Fatalf("GET accounting degenerate: hits=%d misses=%d", res.Hits, res.Misses)
	}
	if res.P99 < res.P50 || res.Max < res.P99 {
		t.Fatalf("quantiles disordered: p50=%d p99=%d max=%d", res.P50, res.P99, res.Max)
	}
	if res.MeanNS <= 0 {
		t.Fatalf("mean: %v", res.MeanNS)
	}
	// Every ack arrived (the server never died), so every tracked
	// history must be fully acknowledged and the recovered state "all
	// ops applied" must be explainable.
	if len(res.Tracked) == 0 {
		t.Fatal("tracking enabled but nothing tracked")
	}
	for key, h := range res.Tracked {
		if h.Acked != len(h.Ops) {
			t.Fatalf("key %d: %d/%d acked on a clean run", key, h.Acked, len(h.Ops))
		}
		pres, v := false, uint64(0)
		for _, op := range h.Ops {
			if op.Del {
				pres, v = false, 0
			} else {
				pres, v = true, op.Val
			}
		}
		if !h.Explainable(pres, v) {
			t.Fatalf("key %d: final state not explainable by its own history", key)
		}
	}
}

func TestLoadgenRunMemcache(t *testing.T) { testLoadgenRun(t, ProtoMemcache) }
func TestLoadgenRunRESP(t *testing.T)     { testLoadgenRun(t, ProtoRESP) }

func TestLoadgenMGetMemcache(t *testing.T) { testLoadgenMGet(t, ProtoMemcache) }
func TestLoadgenMGetRESP(t *testing.T)     { testLoadgenMGet(t, ProtoRESP) }

// testLoadgenMGet drives batched reads: every GET carries MGet keys,
// still one op per batch, with per-key hit/miss accounting.
func testLoadgenMGet(t *testing.T, proto Proto) {
	cfg := Config{
		Proto:    proto,
		Conns:    2,
		Pipeline: 4,
		Keys:     64,
		SetPct:   30,
		MGet:     3,
		Ops:      300,
		Seed:     5,
	}
	res, err := Run(cfg, func() (net.Conn, error) {
		client, srvEnd := MemPipe(32 << 10)
		go miniServe(t, proto, srvEnd)
		return client, nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := uint64(cfg.Conns) * cfg.Ops; res.Ops != want {
		t.Fatalf("ops: got %d, want %d", res.Ops, want)
	}
	if res.Errs != 0 {
		t.Fatalf("errs: %d", res.Errs)
	}
	if res.Hits == 0 || res.Misses == 0 {
		t.Fatalf("GET accounting degenerate: hits=%d misses=%d", res.Hits, res.Misses)
	}
	// Every GET batch carries exactly MGet keys, each scored hit or miss.
	if (res.Hits+res.Misses)%uint64(cfg.MGet) != 0 {
		t.Fatalf("hits+misses = %d not a multiple of MGet=%d",
			res.Hits+res.Misses, cfg.MGet)
	}
}

func TestLoadgenOpenLoop(t *testing.T) {
	cfg := Config{
		Proto:       ProtoMemcache,
		Conns:       2,
		Pipeline:    4,
		Keys:        32,
		SetPct:      50,
		Ops:         50,
		OpenRateOPS: 20000, // 10k/conn: fast enough to finish, slow enough to pace
		Seed:        7,
	}
	start := time.Now()
	res, err := Run(cfg, func() (net.Conn, error) {
		client, srvEnd := MemPipe(32 << 10)
		go miniServe(t, ProtoMemcache, srvEnd)
		return client, nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if want := uint64(cfg.Conns) * cfg.Ops; res.Ops != want {
		t.Fatalf("ops: got %d, want %d", res.Ops, want)
	}
	// 50 ops at 10k/s per connection is >= 5ms of schedule; a closed
	// loop over MemPipe would finish in well under a millisecond.
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("open loop did not pace: finished in %v", elapsed)
	}
}

// TestMemPipeReadDeadline: the deadline contract the fault-tolerant
// client and the server's idle kick both lean on — a blocked Read wakes
// when the deadline lands and returns a net.Error with Timeout() true;
// clearing or extending the deadline restores normal reads.
func TestMemPipeReadDeadline(t *testing.T) {
	a, b := MemPipe(64)

	// A parked reader wakes on the deadline, not on data.
	b.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	var buf [8]byte
	_, err := b.Read(buf[:])
	if err == nil {
		t.Fatal("read returned without data or deadline error")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("deadline error = %v (%T), want net.Error with Timeout()", err, err)
	}
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Fatalf("read returned after %v, before the 50ms deadline", el)
	}

	// An already-expired deadline fails a Read immediately even though
	// no timer ever fires for it.
	b.SetReadDeadline(time.Now().Add(-time.Second))
	if _, err := b.Read(buf[:]); err == nil {
		t.Fatal("read with expired deadline returned nil error")
	} else if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("expired-deadline error = %v, want timeout", err)
	}

	// Clearing the deadline un-poisons the pipe: a normal blocking read
	// completes when data shows up.
	b.SetReadDeadline(time.Time{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		a.Write([]byte("late"))
	}()
	n, err := b.Read(buf[:])
	if err != nil || string(buf[:n]) != "late" {
		t.Fatalf("read after clearing deadline: %q, %v", buf[:n], err)
	}

	// Buffered data beats the deadline: a Read with data already queued
	// returns it even if the deadline is near.
	a.Write([]byte("now"))
	b.SetReadDeadline(time.Now().Add(time.Millisecond))
	n, err = b.Read(buf[:])
	if err != nil || string(buf[:n]) != "now" {
		t.Fatalf("read of queued data under deadline: %q, %v", buf[:n], err)
	}
}
