package loadgen

import (
	"io"
	"net"
	"sync"
	"time"
)

// MemPipe returns the two ends of an in-memory, buffered, full-duplex
// connection: what net.Pipe would be if it had kernel socket buffers.
// Each direction holds up to capBytes in flight, so a writer can batch
// ahead of a slow reader the way TCP allows — which is the behavior the
// server's response batching and the load generator's pipelining are
// built around. Closing either end wakes all blocked readers/writers on
// both ends. Read deadlines are honored (a timed-out Read returns a
// net.Error with Timeout() true, like a socket); write deadlines are
// accepted and ignored — the buffered writes the tests issue never
// block long enough to need them.
func MemPipe(capBytes int) (net.Conn, net.Conn) {
	if capBytes <= 0 {
		capBytes = 64 << 10
	}
	ab := newPipeBuf(capBytes) // a writes, b reads
	ba := newPipeBuf(capBytes) // b writes, a reads
	a := &memConn{r: ba, w: ab, name: "mempipe-a"}
	b := &memConn{r: ab, w: ba, name: "mempipe-b"}
	return a, b
}

// pipeBuf is one direction: a bounded ring of bytes under a mutex, with
// conds for "readable" and "writable".
type pipeBuf struct {
	mu      sync.Mutex
	rd, wr  *sync.Cond
	buf     []byte
	start   int
	n       int
	closedW bool // write end closed: drained reads return EOF
	closedR bool // read end closed: writes fail immediately

	// Read-deadline support: rdDeadline is the reader's current
	// deadline (zero = none), rdGen increments on every deadline change
	// so a stale timer can tell it has been superseded, rdTimer wakes
	// parked readers when the deadline lands.
	rdDeadline time.Time
	rdGen      uint64
	rdTimer    *time.Timer
}

func newPipeBuf(capBytes int) *pipeBuf {
	p := &pipeBuf{buf: make([]byte, capBytes)}
	p.rd = sync.NewCond(&p.mu)
	p.wr = sync.NewCond(&p.mu)
	return p
}

func (p *pipeBuf) write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for len(b) > 0 {
		for p.n == len(p.buf) && !p.closedR && !p.closedW {
			p.wr.Wait()
		}
		if p.closedR || p.closedW {
			return total, io.ErrClosedPipe
		}
		// Copy into the ring, possibly wrapping.
		for len(b) > 0 && p.n < len(p.buf) {
			i := (p.start + p.n) % len(p.buf)
			run := len(p.buf) - i
			if free := len(p.buf) - p.n; run > free {
				run = free
			}
			m := copy(p.buf[i:i+run], b)
			p.n += m
			total += m
			b = b[m:]
		}
		p.rd.Broadcast()
	}
	return total, nil
}

func (p *pipeBuf) read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.n == 0 {
		if p.closedW || p.closedR {
			return 0, io.EOF
		}
		if !p.rdDeadline.IsZero() && !time.Now().Before(p.rdDeadline) {
			return 0, timeoutError{}
		}
		p.rd.Wait()
	}
	total := 0
	for len(b) > 0 && p.n > 0 {
		run := len(p.buf) - p.start
		if run > p.n {
			run = p.n
		}
		m := copy(b, p.buf[p.start:p.start+run])
		p.start = (p.start + m) % len(p.buf)
		p.n -= m
		total += m
		b = b[m:]
	}
	p.wr.Broadcast()
	return total, nil
}

// setReadDeadline installs t as the reader's deadline. A timer wakes
// parked readers when it lands; each call supersedes the previous
// timer via the generation counter.
func (p *pipeBuf) setReadDeadline(t time.Time) {
	p.mu.Lock()
	p.rdDeadline = t
	p.rdGen++
	gen := p.rdGen
	if p.rdTimer != nil {
		p.rdTimer.Stop()
		p.rdTimer = nil
	}
	if !t.IsZero() {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		p.rdTimer = time.AfterFunc(d, func() {
			p.mu.Lock()
			if p.rdGen == gen {
				p.rd.Broadcast()
			}
			p.mu.Unlock()
		})
	}
	p.mu.Unlock()
	if t.IsZero() || t.After(time.Now()) {
		return
	}
	// Already-expired deadline: wake parked readers immediately.
	p.mu.Lock()
	p.rd.Broadcast()
	p.mu.Unlock()
}

// timeoutError is the net.Error a timed-out MemPipe read returns.
type timeoutError struct{}

func (timeoutError) Error() string   { return "mempipe: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

func (p *pipeBuf) closeWrite() {
	p.mu.Lock()
	p.closedW = true
	p.rd.Broadcast()
	p.wr.Broadcast()
	p.mu.Unlock()
}

func (p *pipeBuf) closeRead() {
	p.mu.Lock()
	p.closedR = true
	p.rd.Broadcast()
	p.wr.Broadcast()
	p.mu.Unlock()
}

type memConn struct {
	r, w *pipeBuf
	name string
}

func (c *memConn) Read(b []byte) (int, error)  { return c.r.read(b) }
func (c *memConn) Write(b []byte) (int, error) { return c.w.write(b) }

func (c *memConn) Close() error {
	c.w.closeWrite()
	c.r.closeRead()
	return nil
}

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

func (c *memConn) LocalAddr() net.Addr                { return memAddr(c.name) }
func (c *memConn) RemoteAddr() net.Addr               { return memAddr(c.name) }
func (c *memConn) SetDeadline(t time.Time) error {
	c.r.setReadDeadline(t)
	return nil
}
func (c *memConn) SetReadDeadline(t time.Time) error {
	c.r.setReadDeadline(t)
	return nil
}
func (c *memConn) SetWriteDeadline(t time.Time) error { return nil }
