package loadgen

// Convergence tracking for the crash-mid-serve smoke: with Track on,
// each connection records the total order of mutations it issued per key
// and how many of them were acknowledged before the connection died.
// The key space is partitioned across connections (key % Conns ==
// connID) and every written value is globally unique, so after a crash
// the recovered image can be checked key by key against each history
// independently — the three-way convergence argument:
//
//  1. acked mutations are durable (the server responds only after the
//     FASE's commit fence), so at least the acked prefix applied;
//  2. unacked mutations may or may not have reached the store, but they
//     applied in issue order (same key → same shard → one FIFO pipeline);
//  3. therefore the recovered state of a key must equal the state after
//     some prefix of length j, Acked ≤ j ≤ len(Ops).
//
// Anything else — a torn value, a resurrected deleted key, a lost acked
// write — is a failure of failure atomicity, not of the workload.

// KeyOp is one tracked mutation: a delete, or a set of Val.
type KeyOp struct {
	Del bool
	Val uint64
}

// KeyHist is the mutation history of one key on one connection.
//
// Acked is positional: 1 + the index of the highest acknowledged
// mutation. Under Run acks arrive in issue order, so it is exactly the
// acknowledged prefix length. Under RunFT a session loss can strand
// unacknowledged ops *below* later acknowledged ones; the prefix
// argument still holds because sets and deletes each fully determine
// the key's state — any state reachable by applying an order-preserving
// subsequence through the last acked op equals the state after some
// whole prefix of length >= Acked.
type KeyHist struct {
	Ops   []KeyOp
	Acked int // 1 + index of the highest acknowledged mutation
}

// Explainable reports whether an observed post-recovery state (present
// with value val, or absent) matches the state after some acknowledged-
// or-later prefix of the history. The initial state is absent (fresh
// store).
func (h *KeyHist) Explainable(present bool, val uint64) bool {
	pres, v := false, uint64(0)
	if h.Acked <= 0 && matches(pres, v, present, val) {
		return true
	}
	for j := 1; j <= len(h.Ops); j++ {
		op := h.Ops[j-1]
		if op.Del {
			pres, v = false, 0
		} else {
			pres, v = true, op.Val
		}
		if j >= h.Acked && matches(pres, v, present, val) {
			return true
		}
	}
	return false
}

func matches(pres bool, v uint64, present bool, val uint64) bool {
	if pres != present {
		return false
	}
	return !present || v == val
}
