// Package loadgen drives the networked KV front end the way the paper's
// Fig. 5 drives memcached with memaslap: N client connections issuing a
// GET/SET/DELETE mix, either closed-loop (a fixed pipeline window per
// connection, the next request issued when a response frees a window
// slot) or open-loop (a paced arrival schedule, latency measured from
// the intended send time so coordinated omission doesn't flatter p99).
package loadgen

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ido-nvm/ido/internal/obs"
)

// Proto selects the wire protocol spoken to the server.
type Proto uint8

const (
	ProtoMemcache Proto = iota
	ProtoRESP
)

// Config shapes one load run.
type Config struct {
	Proto    Proto
	Conns    int     // client connections (default 1)
	Pipeline int     // in-flight requests per connection (default 1)
	Keys     uint64  // key-space size (default 1024)
	SetPct   int     // percent SETs (Fig. 5c mix: 40)
	DelPct   int     // percent DELETEs (Fig. 5c mix: 20); the rest are GETs
	Zipf     float64 // key skew exponent when > 1; uniform otherwise
	MGet     int     // keys per GET request (memcache multi-get / RESP MGET); <= 1 means single-key

	Duration    time.Duration // stop after this long (when Ops == 0)
	Ops         uint64        // per-connection op budget (overrides Duration)
	OpenRateOPS int           // > 0: open-loop at this aggregate request rate

	Seed   int64
	Track  bool        // record per-key mutation history (crash convergence)
	Tracer *obs.Tracer // optional: feeds HReqLatency alongside the server's

	// ReportEvery, when positive with Report set, emits a live Interval
	// (ops, rate, windowed latency quantiles) every period while the run
	// progresses — the converging rate table, instead of one final line.
	ReportEvery time.Duration
	Report      func(Interval)

	// Fault tolerance (RunFT). OpTimeout bounds each response wait; a
	// timeout or transport failure kills the session and the client
	// reconnects with exponential backoff + jitter, rotating to the
	// next target after every failed attempt — how a client rides a
	// primary crash onto the promoted standby. Lost in-flight ops are
	// not reissued (they are counted, and tracking records them as
	// maybe-applied). Run ignores these: one session per connection.
	OpTimeout        time.Duration
	ReconnectBackoff time.Duration // base backoff, doubles per failure (default 10ms)
	MaxDialTries     int           // consecutive failed attempts before a conn gives up (default 16)
}

func (cfg *Config) fill() {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.Pipeline <= 0 {
		cfg.Pipeline = 1
	}
	if cfg.Keys == 0 {
		cfg.Keys = 1024
	}
	if cfg.Keys < uint64(cfg.Conns) {
		cfg.Keys = uint64(cfg.Conns)
	}
	if cfg.Ops == 0 && cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.MGet < 1 {
		cfg.MGet = 1
	}
	if cfg.MGet > 60 { // the server's per-request key cap (both protocols)
		cfg.MGet = 60
	}
	if cfg.ReconnectBackoff <= 0 {
		cfg.ReconnectBackoff = 10 * time.Millisecond
	}
	if cfg.MaxDialTries <= 0 {
		cfg.MaxDialTries = 16
	}
}

// Result aggregates a run.
type Result struct {
	Ops     uint64 // responses received
	Errs    uint64 // error responses (or unparseable replies)
	Hits    uint64 // GET hits
	Misses  uint64 // GET misses
	Elapsed time.Duration

	P50, P99, Max uint64  // response latency, nanoseconds (log2-bucket upper bounds)
	MeanNS        float64 // exact mean

	// Fault-tolerance counters (always zero under Run).
	Retries    uint64 // dial attempts that failed and were retried
	Reconnects uint64 // sessions re-established after a transport loss
	Failovers  uint64 // reconnects that landed on a different target
	TimedOut   uint64 // in-flight ops abandoned to a timeout or dead session

	// Tracked holds per-key mutation histories when Config.Track is set;
	// key spaces are connection-disjoint, so the merge is a plain union.
	Tracked map[uint64]*KeyHist
}

// AppendKey formats key k as its 8-byte wire form ("k" + 7 hex digits),
// valid for both protocols (RESP keys are capped at 8 bytes).
func AppendKey(b []byte, k uint64) []byte {
	b = append(b, 'k')
	for shift := 24; shift >= 0; shift -= 4 {
		b = append(b, "0123456789abcdef"[(k>>uint(shift))&0xF])
	}
	return b
}

// latHist is a local log2 latency histogram (same bucketing as obs).
// Buckets are atomic so the live reporter can snapshot a connection's
// distribution while its reader goroutine observes into it.
type latHist struct {
	buckets [65]atomic.Uint64
	sum     atomic.Uint64
	count   atomic.Uint64
}

func (h *latHist) observe(ns uint64) {
	h.buckets[bits.Len64(ns)].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// read accumulates the histogram's current state into dst.
func (h *latHist) read(dst *latSnap) {
	for i := range h.buckets {
		dst.buckets[i] += h.buckets[i].Load()
	}
	dst.sum += h.sum.Load()
	dst.count += h.count.Load()
}

// latSnap is a plain (non-atomic) histogram snapshot: closed under
// subtraction, which is what windows an interval out of two cumulative
// reads.
type latSnap struct {
	buckets [65]uint64
	sum     uint64
	count   uint64
}

func (s *latSnap) sub(p *latSnap) latSnap {
	var out latSnap
	for i := range s.buckets {
		out.buckets[i] = s.buckets[i] - p.buckets[i]
	}
	out.sum = s.sum - p.sum
	out.count = s.count - p.count
	return out
}

func (s *latSnap) quantile(q float64) uint64 {
	if s.count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.count))
	if rank >= s.count {
		rank = s.count - 1
	}
	var seen uint64
	for i, c := range s.buckets {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return ^uint64(0)
}

// pend is the reader-side record of one in-flight request. hist carries
// the tracked key's history by pointer so the reader never touches the
// writer-owned tracked map: the writer appends to Ops, the reader only
// increments Acked, and the meta channel orders each append before the
// ack that could observe it.
type pend struct {
	get   bool
	nk    int // keys in a GET request (multi-get batches count as one op)
	key   uint64
	hist  *KeyHist // non-nil: tracked mutation (ack advances Acked)
	opIdx int      // this mutation's position in hist.Ops
	ts    int64    // send timestamp (intended send time in open-loop mode)
}

// clientConn is one logical client across its (possibly several)
// transport sessions. The live session's writer and reader goroutines
// share it through that session's meta channel and window semaphore.
type clientConn struct {
	cfg Config
	id  int

	// Reader-written, atomically readable by the live reporter.
	ops, errs, hits, misses atomic.Uint64
	lat                     latHist

	// Fault-tolerance counters (RunFT).
	retries, reconnects, failovers, timedOut atomic.Uint64

	tracked map[uint64]*KeyHist
	rerr    error

	// Budget and value-uniqueness state carried across sessions.
	issued   uint64
	valSeq   uint64
	deadline time.Time
}

// session is one transport attempt of a clientConn.
type session struct {
	c      *clientConn
	nc     net.Conn
	window chan struct{} // pipeline window tokens
	meta   chan pend     // FIFO of in-flight requests (writer → reader)
	dead   chan struct{} // closed by the reader on transport failure
}

// Run drives the configured load against connections from dial and
// blocks until every connection finished (op budget, duration, or server
// hangup). dial is called once per connection; a session loss ends that
// connection. For reconnection and failover use RunFT.
func Run(cfg Config, dial func() (net.Conn, error)) (*Result, error) {
	return run(cfg, []func() (net.Conn, error){dial}, false)
}

// RunFT drives the same load fault-tolerantly against a preference-
// ordered target list (dials[0] is the primary). Each connection starts
// on the primary; when a session dies — transport error, per-op timeout,
// server crash — the client reconnects with exponential backoff plus
// jitter, rotating to the next target after every failed attempt, and
// keeps going until its budget or MaxDialTries is exhausted. Acked ops
// are never double-issued; in-flight ops lost with a session are counted
// in Result.TimedOut and recorded as maybe-applied in tracking.
func RunFT(cfg Config, dials []func() (net.Conn, error)) (*Result, error) {
	if len(dials) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	return run(cfg, dials, true)
}

func run(cfg Config, dials []func() (net.Conn, error), ft bool) (*Result, error) {
	cfg.fill()
	clients := make([]*clientConn, cfg.Conns)
	ncs := make([]net.Conn, cfg.Conns)
	for i := range clients {
		// The first session dials synchronously so a bad address fails
		// the run instead of spinning the reconnect loop.
		nc, err := dials[0]()
		if err != nil {
			for _, nc := range ncs[:i] {
				nc.Close()
			}
			return nil, fmt.Errorf("loadgen: dial conn %d: %w", i, err)
		}
		ncs[i] = nc
		clients[i] = &clientConn{cfg: cfg, id: i}
		if cfg.Track {
			clients[i].tracked = map[uint64]*KeyHist{}
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(c *clientConn, nc net.Conn) {
			defer wg.Done()
			c.drive(nc, dials, ft)
		}(c, ncs[i])
	}
	repStop := make(chan struct{})
	var repWG sync.WaitGroup
	if cfg.ReportEvery > 0 && cfg.Report != nil {
		repWG.Add(1)
		go func() {
			defer repWG.Done()
			reportLoop(&cfg, clients, start, repStop)
		}()
	}
	wg.Wait()
	close(repStop)
	repWG.Wait()
	res := &Result{Elapsed: time.Since(start)}
	var all latSnap
	for _, c := range clients {
		res.Ops += c.ops.Load()
		res.Errs += c.errs.Load()
		res.Hits += c.hits.Load()
		res.Misses += c.misses.Load()
		res.Retries += c.retries.Load()
		res.Reconnects += c.reconnects.Load()
		res.Failovers += c.failovers.Load()
		res.TimedOut += c.timedOut.Load()
		c.lat.read(&all)
		if cfg.Track {
			if res.Tracked == nil {
				res.Tracked = map[uint64]*KeyHist{}
			}
			for k, h := range c.tracked {
				res.Tracked[k] = h
			}
		}
	}
	res.P50 = all.quantile(0.50)
	res.P99 = all.quantile(0.99)
	res.Max = all.quantile(1.0)
	if all.count > 0 {
		res.MeanNS = float64(all.sum) / float64(all.count)
	}
	return res, nil
}

// drive runs c's full budget across as many sessions as it takes,
// starting on the already-established nc (dialed as dials[0]). Without
// ft the first session loss ends the connection — Run's historical
// contract.
func (c *clientConn) drive(nc net.Conn, dials []func() (net.Conn, error), ft bool) {
	cfg := &c.cfg
	if cfg.Ops == 0 {
		c.deadline = time.Now().Add(cfg.Duration)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5EED ^ int64(c.id)<<17))
	target, fails := 0, 0
	for {
		opsBefore := c.ops.Load()
		done, lost := c.runSession(nc, cfg.OpTimeout)
		c.timedOut.Add(uint64(lost))
		if done || !ft {
			return
		}
		// A session that made zero progress burns a dial try too —
		// otherwise a listener that accepts and instantly hangs up
		// (a dead-but-bound primary) would livelock the loop.
		if c.ops.Load() == opsBefore {
			fails++
		} else {
			fails = 0
		}
		prev := target
		for {
			if c.budgetDone() {
				return
			}
			if fails >= cfg.MaxDialTries {
				c.rerr = fmt.Errorf("loadgen: conn %d: gave up after %d attempts", c.id, fails)
				return
			}
			var err error
			nc, err = dials[target]()
			if err == nil {
				break
			}
			c.retries.Add(1)
			fails++
			// Rotate to the next target and back off: doubling per
			// failure (capped), plus jitter so reconnecting clients
			// don't stampede the freshly promoted standby in phase.
			target = (target + 1) % len(dials)
			shift := fails
			if shift > 6 {
				shift = 6
			}
			d := cfg.ReconnectBackoff << uint(shift-1)
			time.Sleep(d + time.Duration(rng.Int63n(int64(d/2+1))))
		}
		c.reconnects.Add(1)
		if target != prev {
			c.failovers.Add(1)
		}
	}
}

// budgetDone reports whether the connection's op or time budget is
// spent.
func (c *clientConn) budgetDone() bool {
	if c.cfg.Ops > 0 {
		return c.issued >= c.cfg.Ops
	}
	return time.Now().After(c.deadline)
}

// runSession runs one transport attempt: the writer inline, the reader
// in its own goroutine. done means the budget completed cleanly (every
// issued op acknowledged); lost counts in-flight ops abandoned when the
// transport died.
func (c *clientConn) runSession(nc net.Conn, opTimeout time.Duration) (done bool, lost int) {
	s := &session{
		c:      c,
		nc:     nc,
		window: make(chan struct{}, c.cfg.Pipeline),
		meta:   make(chan pend, c.cfg.Pipeline),
		dead:   make(chan struct{}),
	}
	rdone := make(chan int, 1)
	go func() { rdone <- s.readLoop(opTimeout) }()
	finished := s.writeLoop()
	lost = <-rdone
	nc.Close()
	return finished && lost == 0, lost
}

// Interval is one live progress report from a running load: the window's
// throughput and latency distribution, plus cumulative position. A rate
// table of Intervals converging is how a warm-up (or a regression) shows
// itself during the run instead of after it.
type Interval struct {
	Seq     int           // 1-based report index
	Elapsed time.Duration // since the run started
	Window  time.Duration // this report's measurement window

	Ops       uint64 // responses in the window
	Errs      uint64 // error responses in the window
	OpsPerSec float64
	P50, P99  uint64 // window latency, ns (log2-bucket upper bounds)

	// Fault-tolerance counters, cumulative (RunFT): a jump in
	// Reconnects or Failovers between rows is the live view of a
	// session loss or a primary→standby switch.
	Reconnects uint64
	Failovers  uint64
	TimedOut   uint64
}

// reportLoop snapshots the clients every ReportEvery and reports the
// window between consecutive snapshots.
func reportLoop(cfg *Config, clients []*clientConn, start time.Time, stop <-chan struct{}) {
	tick := time.NewTicker(cfg.ReportEvery)
	defer tick.Stop()
	var prevOps, prevErrs uint64
	var prevLat latSnap
	prevT := start
	seq := 0
	for {
		select {
		case <-stop:
			return
		case now := <-tick.C:
			var ops, errs uint64
			var rc, fo, to uint64
			var lat latSnap
			for _, c := range clients {
				ops += c.ops.Load()
				errs += c.errs.Load()
				rc += c.reconnects.Load()
				fo += c.failovers.Load()
				to += c.timedOut.Load()
				c.lat.read(&lat)
			}
			win := lat.sub(&prevLat)
			iv := Interval{
				Seq:     seq + 1,
				Elapsed: now.Sub(start),
				Window:  now.Sub(prevT),
				Ops:     ops - prevOps,
				Errs:    errs - prevErrs,
				P50:        win.quantile(0.50),
				P99:        win.quantile(0.99),
				Reconnects: rc,
				Failovers:  fo,
				TimedOut:   to,
			}
			if iv.Window > 0 {
				iv.OpsPerSec = float64(iv.Ops) / iv.Window.Seconds()
			}
			cfg.Report(iv)
			seq++
			prevOps, prevErrs, prevLat, prevT = ops, errs, lat, now
		}
	}
}

// ReportPrinter returns a Report callback printing one rate-table line
// per interval to w — the idoserve -load live view.
func ReportPrinter(w io.Writer) func(Interval) {
	return func(iv Interval) {
		fmt.Fprintf(w, "interval %3d  t=%6.1fs  %10.0f ops/s  errs %d  p50 %v  p99 %v",
			iv.Seq, iv.Elapsed.Seconds(), iv.OpsPerSec, iv.Errs,
			time.Duration(iv.P50), time.Duration(iv.P99))
		if iv.Reconnects > 0 || iv.TimedOut > 0 {
			fmt.Fprintf(w, "  reconnects %d  failovers %d  lost %d",
				iv.Reconnects, iv.Failovers, iv.TimedOut)
		}
		fmt.Fprintln(w)
	}
}

// ---- writer ----

// writeLoop issues requests until the connection's budget is spent or
// the session dies; true means the budget completed. Budget state lives
// on the clientConn so a reconnected session resumes where the dead one
// stopped. The RNG is reseeded per session from the cumulative issue
// count, keeping the op mix deterministic for a given loss pattern.
func (ss *session) writeLoop() bool {
	c := ss.c
	cfg := &c.cfg
	rng := rand.New(rand.NewSource(cfg.Seed + int64(c.id)*7919 + int64(c.issued)))
	perConn := cfg.Keys / uint64(cfg.Conns)
	if perConn == 0 {
		perConn = 1
	}
	var zipf *rand.Zipf
	if cfg.Zipf > 1 {
		zipf = rand.NewZipf(rng, cfg.Zipf, 1, perConn-1)
	}
	bw := bufio.NewWriterSize(ss.nc, 32<<10)
	var interval time.Duration
	next := time.Now()
	if cfg.OpenRateOPS > 0 {
		rate := cfg.OpenRateOPS / cfg.Conns
		if rate <= 0 {
			rate = 1
		}
		interval = time.Second / time.Duration(rate)
	}
	scratch := make([]byte, 0, 64)
	finished := false
	for {
		if c.budgetDone() {
			finished = true
			break
		}
		// Window slot: flush buffered requests before blocking, so the
		// server always sees everything we are waiting on.
		select {
		case ss.window <- struct{}{}:
		default:
			if bw.Flush() != nil {
				goto out
			}
			select {
			case ss.window <- struct{}{}:
			case <-ss.dead:
				goto out
			}
		}
		// Open-loop pacing: latency is measured from the intended send
		// time, so queueing delay inside the client counts against p99.
		ts := time.Now()
		if interval > 0 {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			ts = next
		}
		// Pick op and key.
		var kidx uint64
		if zipf != nil {
			kidx = zipf.Uint64()
		} else {
			kidx = rng.Uint64() % perConn
		}
		key := uint64(c.id)*perConn + kidx
		p := pend{key: key, ts: ts.UnixNano()}
		roll := rng.Intn(100)
		scratch = scratch[:0]
		switch {
		case roll < cfg.SetPct:
			c.valSeq++
			val := uint64(c.id+1)<<40 | c.valSeq
			scratch = c.encodeSet(scratch, key, val)
			p.hist, p.opIdx = c.track(key, KeyOp{Val: val})
		case roll < cfg.SetPct+cfg.DelPct:
			scratch = c.encodeDel(scratch, key)
			p.hist, p.opIdx = c.track(key, KeyOp{Del: true})
		default:
			p.get = true
			p.nk = cfg.MGet
			if p.nk > 1 {
				// Multi-get: MGet consecutive keys starting at the rolled
				// one, wrapped within this connection's key space so every
				// key stays connection-local.
				base := uint64(c.id) * perConn
				scratch = c.encodeGetN(scratch, func(i int) uint64 {
					return base + (kidx+uint64(i))%perConn
				}, p.nk)
			} else {
				scratch = c.encodeGet(scratch, key)
			}
		}
		if _, err := bw.Write(scratch); err != nil {
			goto out
		}
		ss.meta <- p
		c.issued++
	}
out:
	bw.Flush()
	close(ss.meta)
	return finished
}

// track appends a mutation to the key's history and returns it (nil when
// tracking is off) plus the op's position, so the reader can ack without
// reading the map.
func (c *clientConn) track(key uint64, op KeyOp) (*KeyHist, int) {
	if c.tracked == nil {
		return nil, 0
	}
	h := c.tracked[key]
	if h == nil {
		h = &KeyHist{}
		c.tracked[key] = h
	}
	h.Ops = append(h.Ops, op)
	return h, len(h.Ops) - 1
}

func (c *clientConn) encodeGet(b []byte, key uint64) []byte {
	if c.cfg.Proto == ProtoMemcache {
		b = append(b, "get "...)
		b = AppendKey(b, key)
		return append(b, '\r', '\n')
	}
	b = append(b, "*2\r\n$3\r\nGET\r\n$8\r\n"...)
	b = AppendKey(b, key)
	return append(b, '\r', '\n')
}

// encodeGetN encodes one n-key batch read: a space-separated memcache
// multi-get or a RESP MGET array. keyAt(i) yields the i-th key.
func (c *clientConn) encodeGetN(b []byte, keyAt func(int) uint64, n int) []byte {
	if c.cfg.Proto == ProtoMemcache {
		b = append(b, "get"...)
		for i := 0; i < n; i++ {
			b = append(b, ' ')
			b = AppendKey(b, keyAt(i))
		}
		return append(b, '\r', '\n')
	}
	b = append(b, '*')
	b = strconv.AppendUint(b, uint64(n+1), 10)
	b = append(b, "\r\n$4\r\nMGET\r\n"...)
	for i := 0; i < n; i++ {
		b = append(b, "$8\r\n"...)
		b = AppendKey(b, keyAt(i))
		b = append(b, '\r', '\n')
	}
	return b
}

func (c *clientConn) encodeDel(b []byte, key uint64) []byte {
	if c.cfg.Proto == ProtoMemcache {
		b = append(b, "delete "...)
		b = AppendKey(b, key)
		return append(b, '\r', '\n')
	}
	b = append(b, "*2\r\n$3\r\nDEL\r\n$8\r\n"...)
	b = AppendKey(b, key)
	return append(b, '\r', '\n')
}

func (c *clientConn) encodeSet(b []byte, key, val uint64) []byte {
	var dig [20]byte
	d := strconv.AppendUint(dig[:0], val, 10)
	if c.cfg.Proto == ProtoMemcache {
		b = append(b, "set "...)
		b = AppendKey(b, key)
		b = append(b, " 0 0 "...)
		b = strconv.AppendUint(b, uint64(len(d)), 10)
		b = append(b, '\r', '\n')
		b = append(b, d...)
		return append(b, '\r', '\n')
	}
	b = append(b, "*3\r\n$3\r\nSET\r\n$8\r\n"...)
	b = AppendKey(b, key)
	b = append(b, "\r\n$"...)
	b = strconv.AppendUint(b, uint64(len(d)), 10)
	b = append(b, '\r', '\n')
	b = append(b, d...)
	return append(b, '\r', '\n')
}

// ---- reader ----

// readLoop consumes replies until the meta stream closes or the
// transport dies, returning the number of in-flight ops it abandoned
// (zero on a clean finish). With opTimeout set, each wait is bounded by
// a read deadline — a server that stops answering counts as dead.
func (ss *session) readLoop(opTimeout time.Duration) (lost int) {
	c := ss.c
	br := bufio.NewReaderSize(ss.nc, 32<<10)
	for p := range ss.meta {
		if opTimeout > 0 {
			ss.nc.SetReadDeadline(time.Now().Add(opTimeout))
		}
		ok, hits, err := c.readReply(br, p.get)
		if err != nil {
			// Server went away mid-window: this reply and the remaining
			// in-flight requests are unacknowledged by definition.
			c.rerr = err
			lost++
			close(ss.dead)
			break
		}
		lat := uint64(time.Now().UnixNano() - p.ts)
		c.lat.observe(lat)
		if c.cfg.Tracer != nil {
			c.cfg.Tracer.Observe(obs.HReqLatency, lat)
		}
		c.ops.Add(1)
		if !ok {
			c.errs.Add(1)
		} else {
			if p.get {
				// Per-key accounting: a multi-get is one op but nk
				// hit-or-miss outcomes.
				c.hits.Add(uint64(hits))
				if p.nk > hits {
					c.misses.Add(uint64(p.nk - hits))
				}
			}
			if p.hist != nil && p.opIdx+1 > p.hist.Acked {
				p.hist.Acked = p.opIdx + 1
			}
		}
		<-ss.window
	}
	// Drain any leftover meta so the writer never blocks on a full
	// channel after a read error.
	for range ss.meta {
		lost++
	}
	return lost
}

// readReply consumes exactly one response and returns the number of
// values it carried (hits). ok=false is a server-reported error (the
// connection stays usable); err != nil is a transport or framing
// failure.
func (c *clientConn) readReply(br *bufio.Reader, isGet bool) (ok bool, hits int, err error) {
	if c.cfg.Proto == ProtoMemcache {
		return c.readMcReply(br, isGet)
	}
	return c.readRespReply(br)
}

func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	return bytes.TrimRight(line, "\r\n"), nil
}

func (c *clientConn) readMcReply(br *bufio.Reader, isGet bool) (bool, int, error) {
	if isGet {
		hits := 0
		for {
			line, err := readLine(br)
			if err != nil {
				return false, 0, err
			}
			switch {
			case bytes.Equal(line, []byte("END")):
				return true, hits, nil
			case bytes.HasPrefix(line, []byte("VALUE ")):
				hits++
				if _, err := readLine(br); err != nil { // data line
					return false, 0, err
				}
			default:
				return false, 0, nil // protocol error reply
			}
		}
	}
	line, err := readLine(br)
	if err != nil {
		return false, 0, err
	}
	switch {
	case bytes.Equal(line, []byte("STORED")),
		bytes.Equal(line, []byte("DELETED")),
		bytes.Equal(line, []byte("NOT_FOUND")):
		return true, 0, nil
	}
	return false, 0, nil
}

func (c *clientConn) readRespReply(br *bufio.Reader) (bool, int, error) {
	line, err := readLine(br)
	if err != nil {
		return false, 0, err
	}
	if len(line) == 0 {
		return false, 0, fmt.Errorf("loadgen: empty RESP reply")
	}
	switch line[0] {
	case '+', ':':
		return true, 0, nil
	case '-':
		return false, 0, nil
	case '$':
		hit, err := c.readRespBulk(br, line)
		if err != nil {
			return false, 0, err
		}
		if hit {
			return true, 1, nil
		}
		return true, 0, nil
	case '*':
		// MGET reply: an array of n bulk elements, one per requested key,
		// null for misses.
		n, perr := strconv.Atoi(string(line[1:]))
		if perr != nil || n < 0 {
			return false, 0, fmt.Errorf("loadgen: bad array header %q", line)
		}
		hits := 0
		for i := 0; i < n; i++ {
			el, err := readLine(br)
			if err != nil {
				return false, 0, err
			}
			if len(el) == 0 || el[0] != '$' {
				return false, 0, fmt.Errorf("loadgen: bad array element %q", el)
			}
			hit, err := c.readRespBulk(br, el)
			if err != nil {
				return false, 0, err
			}
			if hit {
				hits++
			}
		}
		return true, hits, nil
	}
	return false, 0, fmt.Errorf("loadgen: unparseable reply %q", line)
}

// readRespBulk consumes the data line of a bulk reply whose `$n` header
// line is already in hand; a negative length is a null bulk (miss).
func (c *clientConn) readRespBulk(br *bufio.Reader, header []byte) (hit bool, err error) {
	n, perr := strconv.Atoi(string(header[1:]))
	if perr != nil {
		return false, fmt.Errorf("loadgen: bad bulk header %q", header)
	}
	if n < 0 {
		return false, nil
	}
	if _, err := readLine(br); err != nil { // data line
		return false, err
	}
	return true, nil
}
