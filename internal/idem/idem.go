// Package idem forms idempotent regions within FASEs (§IV-A(b)),
// following the cutting strategy of de Kruijf et al. (PLDI 2012) as used
// by the iDO compiler: every memory antidependence — a load followed on
// some intra-region path by a store that may alias it — must be separated
// by a region boundary, so that re-executing any region from its entry
// can never observe its own overwrites. The path analysis propagates
// around back edges, so loop-carried antidependences are cut like any
// other, while pure-read loops stay whole (resumption simply re-runs
// them). FASE-structural cuts come from package fase, and control-flow
// joins whose predecessors lie in different regions become cuts so each
// region stays single-entry.
//
// Register antidependences need no cuts in this system: the iDO log keeps
// one persistent slot per register, updated only at boundaries, so a
// resumed region always restores its entry-time register file (§IV-A(c)'s
// live-range extension achieves the same property for physical registers).
package idem

import (
	"fmt"
	"sort"

	"github.com/ido-nvm/ido/internal/alias"
	"github.com/ido-nvm/ido/internal/dataflow"
	"github.com/ido-nvm/ido/internal/fase"
	"github.com/ido-nvm/ido/internal/ir"
)

// Result describes the region partition of one function.
type Result struct {
	F *ir.Func
	// Cuts lists boundary points in deterministic order: a region begins
	// immediately before the instruction at each cut location.
	Cuts []ir.Loc
	// RegionOf[b][i] is the region id of instruction i in block b, or -1
	// for code outside any FASE.
	RegionOf [][]int
	// EntryOf maps a region id to its entry (cut) location.
	EntryOf []ir.Loc
	// CutRegion maps a cut location to its region id.
	CutRegion map[ir.Loc]int
}

// NumRegions returns the number of regions formed.
func (r *Result) NumRegions() int { return len(r.EntryOf) }

func (r *Result) isCut(loc ir.Loc) bool {
	_, ok := r.CutRegion[loc]
	return ok
}

// Config tunes region formation.
type Config struct {
	// MaxStoresPerRegion, when positive, additionally cuts regions so no
	// region contains more than this many persistent stores. Setting it
	// to 1 degenerates iDO to JUSTDO-like per-store granularity — the
	// ablation configuration of DESIGN.md.
	MaxStoresPerRegion int
}

// Form computes the region partition. Loops are NOT unconditionally cut:
// the violation analysis propagates around back edges, so loop-carried
// antidependences still force cuts, while pure-read loops (hash-chain or
// list searches) stay inside one region — which is what makes iDO's read
// paths nearly instrumentation-free (§V-A). A region containing an uncut
// loop merely re-executes the whole loop on resumption, which is correct
// (and bounded by the FASE) if more expensive.
func Form(f *ir.Func, aa *alias.Analysis, fi *fase.Info, cfg Config) (*Result, error) {
	cuts := map[ir.Loc]bool{}
	for _, c := range fi.MandatoryCuts {
		cuts[c] = true
	}

	for pass := 0; ; pass++ {
		if pass > len(f.Blocks)*64+256 {
			return nil, fmt.Errorf("idem: %s: region formation did not converge", f.Name)
		}
		res, fix := assign(f, fi, cuts)
		if fix != nil {
			cuts[*fix] = true
			continue
		}
		newCuts := findViolations(f, aa, fi, res, cfg)
		progress := false
		for _, c := range newCuts {
			if !cuts[c] {
				cuts[c] = true
				progress = true
			}
		}
		if !progress {
			return res, nil
		}
	}
}

// assign numbers regions from the cut set. When two different regions
// meet at a block entry that has no cut, it returns that location so the
// caller can cut there; likewise for an in-FASE instruction that no
// region entry reaches.
func assign(f *ir.Func, fi *fase.Info, cuts map[ir.Loc]bool) (*Result, *ir.Loc) {
	res := &Result{
		F:         f,
		RegionOf:  make([][]int, len(f.Blocks)),
		CutRegion: map[ir.Loc]int{},
	}
	for bi, b := range f.Blocks {
		res.RegionOf[bi] = make([]int, len(b.Instrs))
		for i := range res.RegionOf[bi] {
			res.RegionOf[bi][i] = -1
		}
	}
	for c := range cuts {
		res.Cuts = append(res.Cuts, c)
	}
	sort.Slice(res.Cuts, func(i, j int) bool { return res.Cuts[i].Less(res.Cuts[j]) })
	for _, c := range res.Cuts {
		res.CutRegion[c] = len(res.EntryOf)
		res.EntryOf = append(res.EntryOf, c)
	}

	const unvisited = -2
	regionOut := make([]int, len(f.Blocks))
	for i := range regionOut {
		regionOut[i] = unvisited
	}
	rpo := dataflow.RPO(f)
	for iter := 0; iter <= len(f.Blocks)+1; iter++ {
		changed := false
		for _, bi := range rpo {
			b := f.Blocks[bi]
			cur := -1
			first := true
			conflict := false
			for _, p := range b.Preds {
				if regionOut[p] == unvisited {
					continue
				}
				if first {
					cur = regionOut[p]
					first = false
				} else if regionOut[p] != cur {
					conflict = true
				}
			}
			if conflict {
				loc := ir.Loc{Block: bi, Index: 0}
				if len(b.Instrs) > 0 && fi.InFASE(loc) && !cuts[loc] {
					return nil, &loc
				}
				cur = -1
			}
			for i := range b.Instrs {
				loc := ir.Loc{Block: bi, Index: i}
				if r, ok := res.CutRegion[loc]; ok {
					cur = r
				}
				if !fi.InFASE(loc) {
					res.RegionOf[bi][i] = -1
					cur = -1
					continue
				}
				res.RegionOf[bi][i] = cur
			}
			if regionOut[bi] != cur {
				regionOut[bi] = cur
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Validate: every reachable in-FASE instruction belongs to a region.
	for _, bi := range rpo {
		if regionOut[bi] == unvisited && bi != 0 {
			continue // unreachable
		}
		for i := range f.Blocks[bi].Instrs {
			loc := ir.Loc{Block: bi, Index: i}
			if fi.InFASE(loc) && res.RegionOf[bi][i] == -1 && !cuts[loc] {
				return nil, &loc
			}
		}
	}
	return res, nil
}

// loadRec is one load observed on an intra-region path, together with the
// allocation sites whose addresses had escaped to memory before it ran
// (the basicAA noalias-malloc refinement: an unknown-pointer load cannot
// touch a fresh allocation that had not yet escaped).
type loadRec struct {
	loc ir.Loc
	esc []int
}

// pathState tracks, along intra-region paths, the loads seen since the
// region entry, the store count since the last cut, and the allocation
// sites escaped so far.
type pathState struct {
	region  int
	loads   []loadRec
	stores  int
	escaped []int
}

// findViolations returns cut locations for every store that may alias a
// load reachable earlier in the same region, and for stores exceeding the
// MaxStoresPerRegion budget.
func findViolations(f *ir.Func, aa *alias.Analysis, fi *fase.Info, res *Result, cfg Config) []ir.Loc {
	blockIn := make([]*pathState, len(f.Blocks))
	violations := map[ir.Loc]bool{}
	rpo := dataflow.RPO(f)

	for iter := 0; iter <= len(f.Blocks)+1; iter++ {
		changed := false
		for _, bi := range rpo {
			b := f.Blocks[bi]
			cur := pathState{region: -3} // impossible region: forces reset
			if blockIn[bi] != nil {
				cur.region = blockIn[bi].region
				cur.loads = append(cur.loads[:0], blockIn[bi].loads...)
				cur.stores = blockIn[bi].stores
				cur.escaped = append(cur.escaped[:0], blockIn[bi].escaped...)
			}
			for i := range b.Instrs {
				loc := ir.Loc{Block: bi, Index: i}
				r := res.RegionOf[bi][i]
				if res.isCut(loc) || r != cur.region {
					// Escape facts survive cuts (escaping is durable);
					// antidependence tracking restarts per region.
					esc := cur.escaped
					cur = pathState{region: r, escaped: esc}
				}
				if r < 0 {
					continue
				}
				switch b.Instrs[i].Op {
				case ir.OpLoad:
					cur.loads = append(cur.loads, loadRec{loc: loc, esc: cur.escaped})
				case ir.OpStore:
					sAddr := aa.AddrAt(loc)
					for _, l := range cur.loads {
						if alias.MayAliasEscape(aa.AddrAt(l.loc), sAddr, l.esc, cur.escaped) {
							violations[loc] = true
							break
						}
					}
					cur.stores++
					if cfg.MaxStoresPerRegion > 0 && cur.stores > cfg.MaxStoresPerRegion {
						violations[loc] = true
					}
					if site, ok := aa.StoredSite(loc); ok && !siteIn(cur.escaped, site) {
						cur.escaped = appendCopy(cur.escaped, site)
					}
				}
			}
			for _, s := range b.Succs {
				sb := f.Blocks[s]
				if len(sb.Instrs) == 0 {
					continue
				}
				sLoc := ir.Loc{Block: s, Index: 0}
				if res.isCut(sLoc) || cur.region < 0 || res.RegionOf[s][0] != cur.region {
					continue // a new region (or non-region code) starts there
				}
				if blockIn[s] == nil {
					cp := pathState{region: cur.region, stores: cur.stores}
					cp.loads = append(cp.loads, cur.loads...)
					cp.escaped = append(cp.escaped, cur.escaped...)
					blockIn[s] = &cp
					changed = true
				} else if mergeState(blockIn[s], &cur) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	var out []ir.Loc
	for v := range violations {
		if !res.isCut(v) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func mergeState(dst, src *pathState) bool {
	changed := false
	have := map[ir.Loc]int{}
	for i, l := range dst.loads {
		have[l.loc] = i
	}
	for _, l := range src.loads {
		if i, ok := have[l.loc]; ok {
			// Same load on two paths: escaped-before-load facts union
			// (alias on SOME path means alias).
			for _, site := range l.esc {
				if !siteIn(dst.loads[i].esc, site) {
					dst.loads[i].esc = appendCopy(dst.loads[i].esc, site)
					changed = true
				}
			}
			continue
		}
		dst.loads = append(dst.loads, l)
		changed = true
	}
	if src.stores > dst.stores {
		dst.stores = src.stores
		changed = true
	}
	for _, site := range src.escaped {
		if !siteIn(dst.escaped, site) {
			dst.escaped = appendCopy(dst.escaped, site)
			changed = true
		}
	}
	return changed
}

func siteIn(s []int, id int) bool {
	for _, x := range s {
		if x == id {
			return true
		}
	}
	return false
}

// appendCopy appends without sharing backing arrays between path states.
func appendCopy(s []int, id int) []int {
	out := make([]int, len(s), len(s)+1)
	copy(out, s)
	return append(out, id)
}

// Check verifies the idempotence property of a finished partition: no
// region may contain a load followed on an intra-region path by a
// may-aliasing store. It returns the first violation found, or nil.
func Check(f *ir.Func, aa *alias.Analysis, fi *fase.Info, res *Result) error {
	if v := findViolations(f, aa, fi, res, Config{}); len(v) > 0 {
		return fmt.Errorf("idem: %s: antidependence not cut at %v", f.Name, v[0])
	}
	return nil
}
