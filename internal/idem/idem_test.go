package idem

import (
	"testing"

	"github.com/ido-nvm/ido/internal/alias"
	"github.com/ido-nvm/ido/internal/fase"
	"github.com/ido-nvm/ido/internal/ir"
)

func form(t *testing.T, src string, cfg Config) (*ir.Func, *Result) {
	t.Helper()
	f, err := ir.ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	fi, err := fase.Infer(f)
	if err != nil {
		t.Fatal(err)
	}
	aa := alias.Analyze(f)
	res, err := Form(f, aa, fi, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(f, aa, fi, res); err != nil {
		t.Fatal(err)
	}
	return f, res
}

func TestSimpleAntidependence(t *testing.T) {
	_, res := form(t, `
func inc 1 {
entry:
  lock r0
  v = load r0 0
  w = add v 1
  store r0 0 w
  unlock r0
  ret
}
`, Config{})
	// Regions: post-acquire, antidep cut before the store, pre-release.
	if res.NumRegions() != 3 {
		t.Fatalf("regions = %d (%v)", res.NumRegions(), res.Cuts)
	}
	// The cut must sit exactly at the store.
	if !res.isCut(ir.Loc{Block: 0, Index: 3}) {
		t.Fatalf("no cut at the store: %v", res.Cuts)
	}
}

func TestNoAntidependenceNoExtraCuts(t *testing.T) {
	_, res := form(t, `
func set 2 {
entry:
  lock r0
  store r0 0 r1
  store r0 8 r1
  store r0 16 r1
  unlock r0
  ret
}
`, Config{})
	// Store-only FASE: just the two mandatory cuts.
	if res.NumRegions() != 2 {
		t.Fatalf("regions = %d (%v)", res.NumRegions(), res.Cuts)
	}
}

func TestFreshAllocationNeedsNoCut(t *testing.T) {
	// Stores to a fresh allocation cannot antidepend on earlier loads —
	// even loads through unknown pointers — until the address escapes.
	_, res := form(t, `
func push 2 {
entry:
  lock r0
  top = load r0 8
  x = load top 0
  node = alloc 16
  store node 0 r1
  store node 8 top
  store r0 8 node
  unlock r0
  ret
}
`, Config{})
	// Cuts: post-acquire, pre-release, and ONE antidep cut at the
	// publishing store (r0+8 was loaded); the node stores stay uncut.
	if res.NumRegions() != 3 {
		t.Fatalf("regions = %d (%v)", res.NumRegions(), res.Cuts)
	}
	if !res.isCut(ir.Loc{Block: 0, Index: 6}) {
		t.Fatalf("no cut at the publish store: %v", res.Cuts)
	}
}

func TestEscapedAllocationForcesCut(t *testing.T) {
	// Once the allocation's address is stored, a later unknown-pointer
	// load may reach it; a subsequent store to the allocation after such
	// a load must be cut.
	_, res := form(t, `
func f 1 {
entry:
  lock r0
  node = alloc 16
  store r0 0 node
  p = load r0 0
  q = load p 8
  store node 8 q
  unlock r0
  ret
}
`, Config{})
	// The store to node at index 5 follows a load (q = load p 8) that
	// may alias node (escaped at index 2): must be cut.
	if !res.isCut(ir.Loc{Block: 0, Index: 5}) {
		t.Fatalf("escaped-alloc antidep not cut: %v", res.Cuts)
	}
}

func TestLoopCarriedAntidependence(t *testing.T) {
	_, res := form(t, `
func f 1 {
entry:
  lock r0
  i = const 0
  jmp loop
loop:
  v = load r0 0
  w = add v i
  store r0 0 w
  i = add i 1
  c = lt i 4
  br c loop out
out:
  unlock r0
  ret
}
`, Config{})
	// The load-store pair on [r0+0] cycles through the back edge; the
	// store must start a new region.
	if !res.isCut(ir.Loc{Block: 1, Index: 2}) {
		t.Fatalf("loop-carried antidep not cut: %v", res.Cuts)
	}
}

func TestPureLoopUncut(t *testing.T) {
	_, res := form(t, `
func walk 1 {
entry:
  lock r0
  cur = load r0 0
  jmp loop
loop:
  c = ne cur 0
  br c body done
body:
  cur = load cur 8
  jmp loop
done:
  unlock r0
  ret
}
`, Config{})
	// Only the two mandatory cuts: a pure-read loop needs none.
	if res.NumRegions() != 2 {
		t.Fatalf("regions = %d (%v)", res.NumRegions(), res.Cuts)
	}
}

func TestMaxStoresConfig(t *testing.T) {
	src := `
func f 1 {
entry:
  lock r0
  store r0 0 1
  store r0 8 2
  store r0 16 3
  unlock r0
  ret
}
`
	_, normal := form(t, src, Config{})
	_, perStore := form(t, src, Config{MaxStoresPerRegion: 1})
	if perStore.NumRegions() != normal.NumRegions()+2 {
		t.Fatalf("per-store regions = %d, normal = %d",
			perStore.NumRegions(), normal.NumRegions())
	}
}

func TestJoinOfDifferentRegionsGetsCut(t *testing.T) {
	// Two branches that end in different regions meet: the join must
	// start a region of its own so regions stay single-entry.
	_, res := form(t, `
func f 2 {
entry:
  lock r0
  br r1 a b
a:
  v = load r0 0
  store r0 0 v
  jmp join
b:
  jmp join
join:
  store r0 8 1
  unlock r0
  ret
}
`, Config{})
	// Block 3 (join) predecessor regions differ (a ends in the antidep
	// region, b in the entry region): join start must be a cut.
	if !res.isCut(ir.Loc{Block: 3, Index: 0}) {
		t.Fatalf("join not cut: %v", res.Cuts)
	}
}

func TestRegionOfOutsideFASE(t *testing.T) {
	f, res := form(t, `
func f 1 {
entry:
  x = add r0 1
  lock r0
  store r0 0 x
  unlock r0
  y = add x 2
  ret y
}
`, Config{})
	if res.RegionOf[0][0] != -1 {
		t.Fatal("pre-FASE instruction assigned a region")
	}
	if res.RegionOf[0][4] != -1 {
		t.Fatal("post-FASE instruction assigned a region")
	}
	_ = f
}
