package obs

import (
	"sync"
	"testing"
)

// TestSnapshotWhileEmitting is the -race contract for the snapshot path:
// Count/Dropped/SampledOut/ReadState/Events/Rotate all run concurrently
// with 16 goroutines emitting (and registering rings mid-flight). Under
// the race detector this proves the consistent-read protocol — cursor
// read once, publish words checked — not just absence of panics.
func TestSnapshotWhileEmitting(t *testing.T) {
	tr := New(Config{ThreadRingCap: 1 << 8, DeviceRingCap: 1 << 8})
	const writers = 16
	const perWriter = 2000

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			r := tr.ThreadRing("t/hammer") // registration races the readers too
			for i := 0; i < perWriter; i++ {
				r.Emit(KFlush, uint64(i), 0)
				r.Span(KFASE, uint64(w), 0, r.Clock())
				tr.DevEmit(KNTStore, uint64(i), 0)
				tr.Observe(HReqLatency, uint64(i))
			}
		}(w)
	}

	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for rdr := 0; rdr < 4; rdr++ {
		rwg.Add(1)
		go func(rdr int) {
			defer rwg.Done()
			var st State
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch rdr {
				case 0:
					tr.ReadState(&st)
				case 1:
					_ = tr.Events()
				case 2:
					_ = tr.Count(KFlush) + tr.Dropped() + tr.SampledOut()
				case 3:
					_ = tr.Rotate()
				}
			}
		}(rdr)
	}

	close(start)
	wg.Wait()
	close(stop)
	rwg.Wait()

	// Counters are exact regardless of drops, rotation, and racing reads.
	var st State
	tr.ReadState(&st)
	if got := st.Counts[KFlush]; got != writers*perWriter {
		t.Fatalf("Counts[KFlush] = %d, want %d", got, writers*perWriter)
	}
	if got := tr.Count(KNTStore); got != writers*perWriter {
		t.Fatalf("Count(KNTStore) = %d, want %d", got, writers*perWriter)
	}
	if got := st.Hists[HReqLatency].Count(); got != writers*perWriter {
		t.Fatalf("hist count = %d, want %d", got, writers*perWriter)
	}
}

func TestReadStateMatchesAccessors(t *testing.T) {
	tr := New(Config{ThreadRingCap: 16, DeviceRingCap: 16})
	r := tr.ThreadRing("t/0")
	for i := 0; i < 40; i++ { // overflows the 16-slot ring: drops accrue
		r.Emit(KFence, uint64(i), 0)
		tr.Observe(HFenceNS, uint64(i))
	}
	var st State
	tr.ReadState(&st)
	if st.Counts[KFence] != tr.Count(KFence) || st.Counts[KFence] != 40 {
		t.Fatalf("Counts[KFence] = %d, want %d", st.Counts[KFence], tr.Count(KFence))
	}
	if st.Dropped != tr.Dropped() || st.Dropped != 24 {
		t.Fatalf("Dropped = %d, want %d", st.Dropped, tr.Dropped())
	}
	hs := st.Hists[HFenceNS].Summary()
	ts := tr.Hist(HFenceNS)
	if hs != ts {
		t.Fatalf("HistCounts.Summary = %+v, want %+v", hs, ts)
	}
	// A nil tracer zeroes the destination.
	st.Counts[KFence] = 99
	(*Tracer)(nil).ReadState(&st)
	if st.Counts[KFence] != 0 {
		t.Fatal("nil tracer ReadState did not zero dst")
	}
}

func TestReadStateZeroAlloc(t *testing.T) {
	tr := New(Config{ThreadRingCap: 64, DeviceRingCap: 64})
	r := tr.ThreadRing("t/0")
	r.Emit(KFlush, 1, 2)
	var st State
	if n := testing.AllocsPerRun(100, func() { tr.ReadState(&st) }); n != 0 {
		t.Fatalf("ReadState allocates %v/op, want 0", n)
	}
}

func TestRotateWindows(t *testing.T) {
	tr := New(Config{ThreadRingCap: 8, DeviceRingCap: 8})
	r := tr.ThreadRing("t/0")
	for i := 0; i < 20; i++ { // fill + overflow the first generation
		r.Emit(KFlush, uint64(i), 0)
	}
	win1 := tr.Rotate()
	if len(win1) != 8 {
		t.Fatalf("window 1 = %d events, want 8 (ring cap)", len(win1))
	}
	// After rotation the ring accepts a full fresh window.
	for i := 0; i < 5; i++ {
		r.Emit(KFence, uint64(i), 0)
	}
	win2 := tr.Rotate()
	if len(win2) != 5 {
		t.Fatalf("window 2 = %d events, want 5", len(win2))
	}
	for _, e := range win2 {
		if e.Kind != KFence {
			t.Fatalf("window 2 leaked a %s event from window 1", e.Kind)
		}
	}
	// Cumulative counters span every window.
	if got := tr.Count(KFlush); got != 20 {
		t.Fatalf("Count(KFlush) = %d, want 20", got)
	}
	if got := tr.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	if got := len(tr.Events()); got != 0 {
		t.Fatalf("Events after Rotate = %d, want 0", got)
	}
}

func TestHistCountsSubAndQuantile(t *testing.T) {
	tr := New(Config{ThreadRingCap: 8, DeviceRingCap: 8})
	for i := 0; i < 100; i++ {
		tr.Observe(HReqLatency, 100) // bucket 7: (64,128]
	}
	var prev State
	tr.ReadState(&prev)
	for i := 0; i < 100; i++ {
		tr.Observe(HReqLatency, 5000) // bucket 13: (4096,8192]
	}
	var cur State
	tr.ReadState(&cur)

	d := cur.Hists[HReqLatency].Sub(&prev.Hists[HReqLatency])
	if d.Count() != 100 {
		t.Fatalf("interval count = %d, want 100", d.Count())
	}
	if d.Sum != 100*5000 {
		t.Fatalf("interval sum = %d, want %d", d.Sum, 100*5000)
	}
	// The interval distribution holds only the new values: every quantile
	// lands in the 5000 bucket even though the cumulative p50 would not.
	if q := d.Quantile(0.50); q != 8191 {
		t.Fatalf("interval p50 = %d, want 8191", q)
	}
	if q := cur.Hists[HReqLatency].Quantile(0.50); q != 127 {
		t.Fatalf("cumulative p50 = %d, want 127", q)
	}
}
