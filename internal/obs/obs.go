// Package obs is the unified persist-event tracing and metrics layer.
//
// The iDO paper's argument is an event-count argument: iDO wins because it
// issues fewer write-backs and fences per FASE than undo/redo logging
// (§V, Fig. 6). The repo's cumulative counters (nvm.Stats,
// persist.RuntimeStats) show totals but not *where* in a FASE the flushes,
// fences, and log appends happen, or what recovery actually did after a
// crash. This package records that: typed, timestamped events from every
// layer — the NVM device (write-backs, fences, NT stores, evictions,
// crashes), the runtimes (log appends, region boundaries, FASEs, lock
// acquire/release through indirect holders), and recovery (phases and the
// per-thread audit) — merged into one timeline that exports as Chrome
// trace_event JSON (chrome://tracing, Perfetto).
//
// # Design
//
// A Tracer owns a set of bounded event buffers ("rings"):
//
//   - one ring per registered runtime thread (single-writer);
//   - a fixed array of device stripes, picked by a goroutine-affine stack
//     hash exactly like the device's striped stat counters, so device
//     events record without any shared lock (multi-writer, made safe by an
//     atomic claim of each slot index).
//
// Recording is lock-free and allocation-free: an event claims its slot
// with one atomic fetch-add and writes it in place. When a ring is full,
// further events increment a drop counter instead of wrapping — a dropped
// tail is honest, a torn or overwritten event is not — and every Emit
// unconditionally bumps an exact per-kind counter, so Count() matches the
// device's Stats even if the ring overflowed.
//
// # The disabled fast path
//
// Everything a producer holds is nil when tracing is off: the device keeps
// an atomic tracer pointer (one load + branch per persist operation), and
// runtime threads keep a *Ring whose methods are nil-receiver safe (one
// compare per protocol step). No allocation, no time syscall, no atomic
// write happens on the disabled path; TestTracerDisabledZeroAlloc and the
// PR 2 dispatch benchmarks hold this to ≤2% and 0 allocs/op.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Kind is the type of one traced event.
type Kind uint8

// Event kinds. Span kinds (flush, fence, NT store, region, FASE, recovery
// phase) carry a duration; the rest are instants.
const (
	// KFlush is one cache-line write-back (CLWB/CLFLUSH reaching the
	// memory controller). A = line address. Dur = observed latency.
	KFlush Kind = iota
	// KFence is one persist fence. Dur = observed stall.
	KFence
	// KNTStore is one non-temporal store. A = address.
	KNTStore
	// KEvict is a spontaneous cache eviction write-back. A = line.
	KEvict
	// KCrash is a device crash settling the persistence domain. A = mode.
	KCrash
	// KCrashInject is an injected crash firing mid-execution.
	KCrashInject
	// KLogAppend is one runtime log record written. A = payload bytes,
	// B = a runtime-specific tag (site pc, entry kind, region ID).
	KLogAppend
	// KBoundary is an idempotent-region boundary commit: recovery_pc
	// published. A = region ID, B = logged output count.
	KBoundary
	// KRegion is the span of one completed idempotent region (between
	// consecutive boundaries). A = region ID, B = tracked stores.
	KRegion
	// KFASE is the span of one completed failure-atomic section.
	// A = log bytes written during the FASE.
	KFASE
	// KLockAcq is a FASE lock acquisition. A = indirect holder address.
	KLockAcq
	// KLockRel is a FASE lock release. A = indirect holder address.
	KLockRel
	// KRecovery is one recovery phase (scan, reacquire, resume, rollback,
	// truncate). A = a Phase* constant, B = items processed.
	KRecovery
	// KAlloc is one persistent-heap block allocation (header published
	// allocated). A = block address, B = block bytes including the header.
	KAlloc
	// KFree is one persistent-heap block free (header published free).
	// A = block address, B = block bytes including the header.
	KFree
	// KRefill is one magazine refill: a run of size-class blocks carved
	// from the backing store. A = class block size, B = blocks carved.
	KRefill
	// KFenceCombined is one commit whose persist fence was absorbed into
	// another thread's merged group-commit fence (the thread waited on the
	// combiner instead of fencing itself). A = combiner epoch.
	KFenceCombined
	// KBatchCommit is one merged group-commit flush+fence performed by an
	// elected leader on behalf of a batch. A = FASEs (slots) served,
	// B = total cache lines written back for the batch.
	KBatchCommit
	// KNetReq is one served network request (parse → shard dispatch →
	// respond), emitted as a span by the owning shard pipeline.
	// A = request opcode, B = shard index.
	KNetReq
	// KNetBatch is one batched response write flushed back to a client
	// connection. A = bytes written, B = requests covered by the flush.
	KNetBatch
	// KNetFastGet is one GET served by the lock-free read fast lane —
	// no slot, no FASE, no fence. A = first key word, B = shard index.
	KNetFastGet

	nKinds
)

// Recovery phase identifiers (Event.A of a KRecovery event).
const (
	PhaseScan = iota + 1
	PhaseReacquire
	PhaseResume
	PhaseRollback
	PhaseTruncate
)

func (k Kind) String() string {
	switch k {
	case KFlush:
		return "flush"
	case KFence:
		return "fence"
	case KNTStore:
		return "nt-store"
	case KEvict:
		return "evict"
	case KCrash:
		return "crash"
	case KCrashInject:
		return "crash-inject"
	case KLogAppend:
		return "log-append"
	case KBoundary:
		return "boundary"
	case KRegion:
		return "region"
	case KFASE:
		return "fase"
	case KLockAcq:
		return "lock-acquire"
	case KLockRel:
		return "lock-release"
	case KRecovery:
		return "recovery"
	case KAlloc:
		return "alloc"
	case KFree:
		return "free"
	case KRefill:
		return "refill"
	case KFenceCombined:
		return "fence-combined"
	case KBatchCommit:
		return "batch-commit"
	case KNetReq:
		return "net-req"
	case KNetBatch:
		return "net-batch"
	case KNetFastGet:
		return "net-fastget"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NumKinds is the number of event kinds (for tests iterating counts).
const NumKinds = int(nKinds)

// Event is one recorded persist event. TS and Dur are nanoseconds on the
// tracer's monotonic clock; Tid identifies the recording ring.
type Event struct {
	TS   int64
	Dur  int64
	A, B uint64
	Kind Kind
	Tid  int32
}

// Config sizes a tracer's rings (in events; one event is 40 bytes).
type Config struct {
	// ThreadRingCap is the capacity of each registered thread ring.
	ThreadRingCap int
	// DeviceRingCap is the capacity of each of the device stripe rings.
	DeviceRingCap int
	// SampleEvery, when non-nil, records only one in every N events of a
	// kind in the rings (per ring, deterministically: occurrences 1, N+1,
	// 2N+1, ... are kept). Values <= 1 record every event. Counts stay
	// exact regardless — sampling thins the timeline, never the counters —
	// and thinned events are tallied by SampledOut, not Dropped. This is
	// the fig-scale knob for event storms (e.g. trace 1-in-100 nt-stores
	// through an NVThreads page flush) without giant rings.
	SampleEvery map[Kind]int
}

// DefaultConfig holds a FASE-timeline's worth of events per thread and a
// generous budget for device events (16 stripes × 32Ki events ≈ 20 MB).
func DefaultConfig() Config {
	return Config{ThreadRingCap: 1 << 14, DeviceRingCap: 1 << 15}
}

// nDevStripes is the number of device stripe rings. Power of two.
const nDevStripes = 16

// devTidBase offsets device stripe tids above registered thread tids.
const devTidBase = 1 << 10

// Tracer owns the event rings, exact per-kind counts, and the metric
// histograms for one tracing session. All methods are safe for concurrent
// use; the zero per-event cost path is a nil *Tracer / nil *Ring.
type Tracer struct {
	epoch time.Time
	cfg   Config

	// sample[k] is the 1-in-N recording period for kind k (0 or 1 = keep
	// all), copied out of cfg.SampleEvery so the emit path indexes a flat
	// array instead of a map.
	sample [nKinds]uint64

	dev [nDevStripes]*Ring

	hists [nHist]hist

	// rings is the atomically published registry of every ring, device
	// stripes first. Registration copies the slice and swings the pointer,
	// so snapshot readers iterate it lock-free; mu serializes writers only.
	mu    sync.Mutex
	rings atomic.Pointer[[]*Ring]
}

// New creates a tracer with all rings preallocated, so recording never
// allocates.
func New(cfg Config) *Tracer {
	if cfg.ThreadRingCap <= 0 {
		cfg.ThreadRingCap = DefaultConfig().ThreadRingCap
	}
	if cfg.DeviceRingCap <= 0 {
		cfg.DeviceRingCap = DefaultConfig().DeviceRingCap
	}
	tr := &Tracer{epoch: time.Now(), cfg: cfg}
	for k, n := range cfg.SampleEvery {
		if int(k) < NumKinds && n > 1 {
			tr.sample[k] = uint64(n)
		}
	}
	rings := make([]*Ring, 0, nDevStripes)
	for i := range tr.dev {
		r := &Ring{
			tr:    tr,
			tid:   int32(devTidBase + i),
			label: fmt.Sprintf("nvm-dev/%d", i),
		}
		r.rb.Store(newRingBuf(cfg.DeviceRingCap))
		tr.dev[i] = r
		rings = append(rings, r)
	}
	tr.rings.Store(&rings)
	return tr
}

// Clock returns nanoseconds since the tracer's epoch (monotonic). A nil
// tracer reads as 0.
func (tr *Tracer) Clock() int64 {
	if tr == nil {
		return 0
	}
	return int64(time.Since(tr.epoch))
}

// ThreadRing registers and returns a new single-writer ring for one
// runtime thread. label names the timeline row in the exported trace
// (e.g. "ido/t3"). ThreadRing on a nil tracer returns a nil ring, whose
// methods are all safe no-ops — the disabled fast path.
func (tr *Tracer) ThreadRing(label string) *Ring {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	old := *tr.rings.Load()
	r := &Ring{
		tr:    tr,
		tid:   int32(len(old) - nDevStripes),
		label: label,
	}
	r.rb.Store(newRingBuf(tr.cfg.ThreadRingCap))
	next := make([]*Ring, len(old)+1)
	copy(next, old)
	next[len(old)] = r
	tr.rings.Store(&next)
	return r
}

// devRing picks this goroutine's device stripe from a stack-address hash,
// the same registration-free affinity trick the device's stat stripes use.
func (tr *Tracer) devRing() *Ring {
	var probe byte
	h := uint64(uintptr(unsafe.Pointer(&probe))) * 0x9E3779B97F4A7C15
	return tr.dev[h>>(64-4)]
}

// DevEmit records an instant device event on this goroutine's stripe.
func (tr *Tracer) DevEmit(k Kind, a, b uint64) {
	tr.devRing().emit(k, a, b, tr.Clock(), 0)
}

// DevSpan records a device span that began at startTS (from Clock) and
// ends now, and feeds the flush/fence latency histograms.
func (tr *Tracer) DevSpan(k Kind, a, b uint64, startTS int64) {
	now := tr.Clock()
	dur := now - startTS
	tr.devRing().emit(k, a, b, startTS, dur)
	switch k {
	case KFlush:
		tr.Observe(HFlushNS, uint64(dur))
	case KFence:
		tr.Observe(HFenceNS, uint64(dur))
	}
}

// Count returns the exact number of k events recorded (including any that
// were dropped from a full ring). Lock-free: one bounded pass of atomic
// loads over the published ring registry, safe while producers emit.
func (tr *Tracer) Count(k Kind) uint64 {
	var n uint64
	for _, r := range *tr.rings.Load() {
		n += r.kcount[k].Load()
	}
	return n
}

// Dropped returns the number of events lost to full rings. The exported
// trace is complete if and only if this and SampledOut are zero; Count is
// exact either way.
func (tr *Tracer) Dropped() uint64 {
	var n uint64
	for _, r := range *tr.rings.Load() {
		n += r.dropped.Load()
	}
	return n
}

// SampledOut returns the number of events deliberately thinned from the
// rings by Config.SampleEvery. Unlike Dropped, these are an intentional
// trade; Count still includes them.
func (tr *Tracer) SampledOut() uint64 {
	var n uint64
	for _, r := range *tr.rings.Load() {
		n += r.sampled.Load()
	}
	return n
}

// Events returns every recorded event merged across rings in timestamp
// order. Safe to call while producers emit: each ring's write cursor is
// read once to bound the scan, and only slots whose publish word is set
// are copied out, so an event claimed but not yet fully written is
// skipped rather than read torn. When producers are quiescent the result
// is exactly everything recorded.
func (tr *Tracer) Events() []Event {
	var out []Event
	for _, r := range *tr.rings.Load() {
		out = r.rb.Load().collect(out)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// Rotate swaps every ring's buffer for a fresh empty one and returns the
// events published in the replaced buffers, merged in timestamp order.
// This is the windowed-capture primitive: Rotate (discard) to open a
// window, run, Rotate again to collect exactly the window's events — on
// a long-lived process whose drop-newest rings filled long ago, rotation
// is what makes a live capture possible at all. Producers racing the swap
// finish their write into whichever buffer they claimed a slot in; a slot
// published into the old buffer after collection is missed from the
// returned window but still counted by Count. Cumulative counters
// (Count, Dropped, SampledOut, histograms) are unaffected.
func (tr *Tracer) Rotate() []Event {
	if tr == nil {
		return nil
	}
	var out []Event
	for _, r := range *tr.rings.Load() {
		old := r.rb.Swap(newRingBuf(len(r.rb.Load().buf)))
		out = old.collect(out)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// ringBuf is one generation of a ring's storage. seq[i] is the publish
// word for buf[i]: stored (release) only after the event is fully
// written, so a reader that observes seq[i] != 0 (acquire) reads a
// complete event. Swapping the whole generation out atomically is what
// lets Rotate reset a ring without a double-writer race on slot indices —
// an in-flight producer keeps writing into the generation it claimed
// a slot in.
type ringBuf struct {
	next atomic.Uint64
	buf  []Event
	seq  []atomic.Uint32
}

func newRingBuf(cap int) *ringBuf {
	return &ringBuf{buf: make([]Event, cap), seq: make([]atomic.Uint32, cap)}
}

// collect appends every published event to out. The write cursor is read
// once, bounding the scan even while producers keep claiming slots.
func (rb *ringBuf) collect(out []Event) []Event {
	n := rb.next.Load()
	if n > uint64(len(rb.buf)) {
		n = uint64(len(rb.buf))
	}
	for i := uint64(0); i < n; i++ {
		if rb.seq[i].Load() != 0 {
			out = append(out, rb.buf[i])
		}
	}
	return out
}

// Ring is one bounded event buffer. A thread ring has a single writer;
// device stripe rings are shared, which the atomic index claim makes safe.
// All methods are nil-receiver safe so a disabled tracer costs producers
// one pointer compare. The counters live on the Ring and survive buffer
// rotation; the event storage lives in the current ringBuf generation.
type Ring struct {
	tr      *Tracer
	tid     int32
	label   string
	dropped atomic.Uint64
	sampled atomic.Uint64
	kcount  [nKinds]atomic.Uint64
	rb      atomic.Pointer[ringBuf]
}

func (r *Ring) emit(k Kind, a, b uint64, ts, dur int64) {
	c := r.kcount[k].Add(1)
	if n := r.tr.sample[k]; n > 1 && (c-1)%n != 0 {
		r.sampled.Add(1)
		return
	}
	rb := r.rb.Load()
	i := rb.next.Add(1) - 1
	if i >= uint64(len(rb.buf)) {
		r.dropped.Add(1)
		return
	}
	rb.buf[i] = Event{TS: ts, Dur: dur, A: a, B: b, Kind: k, Tid: r.tid}
	rb.seq[i].Store(1)
}

// Emit records an instant event.
func (r *Ring) Emit(k Kind, a, b uint64) {
	if r == nil {
		return
	}
	r.emit(k, a, b, r.tr.Clock(), 0)
}

// Span records an event spanning [startTS, now). Obtain startTS from
// Clock at the start of the operation.
func (r *Ring) Span(k Kind, a, b uint64, startTS int64) {
	if r == nil {
		return
	}
	now := r.tr.Clock()
	r.emit(k, a, b, startTS, now-startTS)
}

// Clock returns the tracer clock, or 0 on a nil ring.
func (r *Ring) Clock() int64 {
	if r == nil {
		return 0
	}
	return r.tr.Clock()
}

// Observe feeds v into histogram h; nil-safe.
func (r *Ring) Observe(h HistKind, v uint64) {
	if r == nil {
		return
	}
	r.tr.Observe(h, v)
}
