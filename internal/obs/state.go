package obs

// The snapshot layer: cumulative, lock-free reads of everything the
// tracer counts, shaped so a monitoring plane can copy the whole state
// into a caller-owned struct without allocating and diff two copies into
// interval rates. The serving hot path never touches any of this — the
// snapshot reader only performs atomic loads against counters the
// producers were already maintaining.

// HistCounts is the raw cumulative form of one log2 histogram: bucket i
// counts values in [2^(i-1), 2^i), bucket 0 counts zeros. Unlike Summary
// it is closed under subtraction, which is what turns two cumulative
// snapshots into an interval distribution (and interval percentiles).
type HistCounts struct {
	Buckets [65]uint64
	Sum     uint64
}

// Count returns the total number of observations.
func (h *HistCounts) Count() uint64 {
	var n uint64
	for _, c := range h.Buckets {
		n += c
	}
	return n
}

// Mean returns the exact mean, or 0 with no observations.
func (h *HistCounts) Mean() float64 {
	if n := h.Count(); n > 0 {
		return float64(h.Sum) / float64(n)
	}
	return 0
}

// Sub returns the interval histogram cur - prev. Counters are
// monotonic, so a well-ordered pair never underflows; a stale pair
// (prev taken after cur) clamps at zero rather than wrapping.
func (h *HistCounts) Sub(prev *HistCounts) HistCounts {
	var out HistCounts
	for i := range h.Buckets {
		if h.Buckets[i] > prev.Buckets[i] {
			out.Buckets[i] = h.Buckets[i] - prev.Buckets[i]
		}
	}
	if h.Sum > prev.Sum {
		out.Sum = h.Sum - prev.Sum
	}
	return out
}

// Quantile returns the upper bound of the bucket in which quantile q
// (0 < q <= 1) falls — within 2x of the true value, like Summary.
func (h *HistCounts) Quantile(q float64) uint64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	want := uint64(q * float64(total))
	if want == 0 {
		want = 1
	}
	var cum uint64
	var max uint64
	for i, c := range h.Buckets {
		if c > 0 {
			max = bucketHigh(i)
		}
		cum += c
		if cum >= want {
			return bucketHigh(i)
		}
	}
	return max
}

// Summary condenses the counts the same way Tracer.Hist does.
func (h *HistCounts) Summary() Summary {
	s := Summary{Count: h.Count(), Sum: h.Sum}
	if s.Count == 0 {
		return s
	}
	s.Mean = float64(s.Sum) / float64(s.Count)
	for i, c := range h.Buckets {
		if c > 0 {
			s.Max = bucketHigh(i)
		}
	}
	s.P50 = h.Quantile(0.50)
	s.P90 = h.Quantile(0.90)
	s.P99 = h.Quantile(0.99)
	return s
}

// State is one cumulative snapshot of a tracer: exact per-kind event
// counts, the drop/thinning tallies, and every metric histogram in raw
// bucket form. Two States subtract into interval rates; one State
// renders directly as cumulative counters.
type State struct {
	Counts     [NumKinds]uint64
	Dropped    uint64
	SampledOut uint64
	Hists      [NumHists]HistCounts
}

// ReadState fills dst with a cumulative snapshot of the tracer. It is
// lock-free (a bounded pass of atomic loads over the registered rings
// and histograms), safe to call while producers emit, and performs no
// allocation — the 0-allocs/op contract the metrics plane is gated on.
// Counters read per ring are monotonic, so every count in dst is a
// value the tracer actually passed through, though counts of different
// kinds may be skewed by events recorded during the pass. A nil tracer
// zeroes dst.
func (tr *Tracer) ReadState(dst *State) {
	*dst = State{}
	if tr == nil {
		return
	}
	for _, r := range *tr.rings.Load() {
		for k := 0; k < NumKinds; k++ {
			dst.Counts[k] += r.kcount[k].Load()
		}
		dst.Dropped += r.dropped.Load()
		dst.SampledOut += r.sampled.Load()
	}
	for h := range dst.Hists {
		hh := &tr.hists[h]
		c := &dst.Hists[h]
		for i := range c.Buckets {
			c.Buckets[i] = hh.buckets[i].Load()
		}
		c.Sum = hh.sum.Load()
	}
}
