package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// HistKind names one of the tracer's metric histograms. All histograms
// use power-of-two buckets: value v lands in bucket bits.Len64(v), i.e.
// bucket i holds values in [2^(i-1), 2^i). They answer the paper's §V
// questions — how expensive is one write-back or fence, how wide is a
// region's output set, how much log does one FASE write, how long does a
// region run — as distributions rather than single totals.
type HistKind int

// Tracer histograms.
const (
	// HFlushNS is the observed latency of each cache-line write-back.
	HFlushNS HistKind = iota
	// HFenceNS is the observed stall of each persist fence.
	HFenceNS
	// HOutputsPerRegion is the logged output-set size at each boundary.
	HOutputsPerRegion
	// HLogBytesPerFASE is the log payload written during each FASE.
	HLogBytesPerFASE
	// HRegionNS is the wall time of each completed idempotent region.
	HRegionNS
	// HRegionStores is the tracked-store count of each completed region.
	HRegionStores
	// HFASEsPerFence is the number of FASE commits amortized by each
	// merged group-commit fence — the direct observation of the
	// combiner's amortization factor (1 = no combining happened).
	HFASEsPerFence
	// HReqLatency is the nanoseconds from a network request's parse
	// completion to its response being handed to the connection writer —
	// the server-side component of end-to-end request latency.
	HReqLatency

	nHist
)

// NumHists is the number of histogram kinds.
const NumHists = int(nHist)

func (h HistKind) String() string {
	switch h {
	case HFlushNS:
		return "flush-ns"
	case HFenceNS:
		return "fence-ns"
	case HOutputsPerRegion:
		return "outputs/region"
	case HLogBytesPerFASE:
		return "log-bytes/fase"
	case HRegionNS:
		return "region-ns"
	case HRegionStores:
		return "stores/region"
	case HFASEsPerFence:
		return "fases/fence"
	case HReqLatency:
		return "req-latency-ns"
	default:
		return fmt.Sprintf("HistKind(%d)", int(h))
	}
}

// hist is a lock-free log2 histogram: bucket i counts values in
// [2^(i-1), 2^i); bucket 0 counts zeros.
type hist struct {
	buckets [65]atomic.Uint64
	sum     atomic.Uint64
}

// Observe feeds v into histogram h.
func (tr *Tracer) Observe(h HistKind, v uint64) {
	hh := &tr.hists[h]
	hh.buckets[bits.Len64(v)].Add(1)
	hh.sum.Add(v)
}

// Summary condenses one histogram: Count and Sum are exact; the
// percentiles are the upper bound of the bucket in which the percentile
// falls (so within 2× of the true value).
type Summary struct {
	Count uint64
	Sum   uint64
	Mean  float64
	P50   uint64
	P90   uint64
	P99   uint64
	Max   uint64 // upper bound of the highest nonempty bucket
}

// bucketHigh is the largest value bucket i can hold.
func bucketHigh(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Hist summarizes histogram h.
func (tr *Tracer) Hist(h HistKind) Summary {
	hh := &tr.hists[h]
	var s Summary
	var counts [65]uint64
	for i := range counts {
		counts[i] = hh.buckets[i].Load()
		s.Count += counts[i]
		if counts[i] > 0 {
			s.Max = bucketHigh(i)
		}
	}
	s.Sum = hh.sum.Load()
	if s.Count == 0 {
		return s
	}
	s.Mean = float64(s.Sum) / float64(s.Count)
	pct := func(p float64) uint64 {
		want := uint64(p * float64(s.Count))
		if want == 0 {
			want = 1
		}
		var cum uint64
		for i := range counts {
			cum += counts[i]
			if cum >= want {
				return bucketHigh(i)
			}
		}
		return s.Max
	}
	s.P50, s.P90, s.P99 = pct(0.50), pct(0.90), pct(0.99)
	return s
}
