package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Chrome trace_event export: the merged timeline serializes as the JSON
// Object Format understood by chrome://tracing and Perfetto. Span events
// (nonzero Dur) become complete events (ph "X"); the rest become
// thread-scoped instants (ph "i"). Timestamps are microseconds in Chrome's
// format; sub-microsecond precision survives as fractional ts.

// WriteChromeTrace writes the merged timeline to w. For a complete trace
// call with producers quiescent; with live producers the event list is a
// race-clean snapshot (see Events). The metadata block records the
// per-kind counts and the drop counter so a consumer can tell whether
// the event list is complete.
func (tr *Tracer) WriteChromeTrace(w io.Writer) error {
	return tr.WriteChromeTraceEvents(w, tr.Events())
}

// WriteChromeTraceEvents writes an explicit event slice — e.g. a capture
// window returned by Rotate — in the same trace_event JSON shape as
// WriteChromeTrace. The cumulative otherData counters still describe the
// whole tracer session, not just the slice.
func (tr *Tracer) WriteChromeTraceEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriterSize(w, 1<<16)

	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped\":\"%d\"", tr.Dropped())
	for k := Kind(0); k < nKinds; k++ {
		if n := tr.Count(k); n > 0 {
			fmt.Fprintf(bw, ",\"count_%s\":\"%d\"", k, n)
		}
	}
	fmt.Fprintf(bw, "},\"traceEvents\":[")

	first := true
	comma := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
	}

	// Thread-name metadata rows, one per ring with events in the slice.
	present := make(map[int32]bool, 8)
	for i := range events {
		present[events[i].Tid] = true
	}
	for _, r := range *tr.rings.Load() {
		if !present[r.tid] {
			continue
		}
		comma()
		name, _ := json.Marshal(r.label)
		fmt.Fprintf(bw, "\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}", r.tid, name)
	}

	for i := range events {
		e := &events[i]
		comma()
		ts := float64(e.TS) / 1e3
		if e.Dur > 0 {
			fmt.Fprintf(bw, "\n{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"name\":%q,\"args\":{\"a\":\"%#x\",\"b\":\"%#x\"}}",
				e.Tid, ts, float64(e.Dur)/1e3, e.Kind.String(), e.A, e.B)
		} else {
			fmt.Fprintf(bw, "\n{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"s\":\"t\",\"name\":%q,\"args\":{\"a\":\"%#x\",\"b\":\"%#x\"}}",
				e.Tid, ts, e.Kind.String(), e.A, e.B)
		}
	}
	fmt.Fprintf(bw, "\n]}\n")
	return bw.Flush()
}

// chromeTrace mirrors the exported JSON shape for verification.
type chromeTrace struct {
	TraceEvents []struct {
		Ph   string  `json:"ph"`
		Name string  `json:"name"`
		Tid  int32   `json:"tid"`
		TS   float64 `json:"ts"`
	} `json:"traceEvents"`
	OtherData map[string]string `json:"otherData"`
}

// ExportChromeFile writes the trace to path, then reads it back and
// verifies that it parses as trace_event JSON (the CI smoke contract).
// It returns the number of non-metadata events exported.
func (tr *Tracer) ExportChromeFile(path string) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return VerifyChromeFile(path)
}

// VerifyChromeFile parses a trace_event JSON file and returns its
// non-metadata event count.
func VerifyChromeFile(path string) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var ct chromeTrace
	if err := json.Unmarshal(raw, &ct); err != nil {
		return 0, fmt.Errorf("obs: %s is not valid trace JSON: %w", path, err)
	}
	n := 0
	for _, e := range ct.TraceEvents {
		if e.Ph != "M" {
			n++
		}
	}
	return n, nil
}

// CountInFile returns how many events named kind a trace file holds —
// the hook the acceptance test uses to compare exported flush/fence
// counts against nvm.Stats.
func CountInFile(path string, kind Kind) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var ct chromeTrace
	if err := json.Unmarshal(raw, &ct); err != nil {
		return 0, err
	}
	want := kind.String()
	n := 0
	for _, e := range ct.TraceEvents {
		if e.Ph != "M" && e.Name == want {
			n++
		}
	}
	return n, nil
}
