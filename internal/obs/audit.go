package obs

import (
	"fmt"
	"strings"
)

// The recovery audit trail: a structured record of what a recovery pass
// actually did to each persistent thread log — which locks it re-acquired
// through the indirect holders, which region it resumed at which
// recovery_pc, and how many logged words it restored. cmd/idorecover
// prints it; tests assert on it; it is the post-crash counterpart of the
// execution-time event timeline.

// Thread-audit actions.
const (
	// AuditIdle: the log showed no interrupted FASE and nothing to do.
	AuditIdle = "idle"
	// AuditScrubbed: no interrupted FASE, but stale lock slots from the
	// benign robbed-lock window were cleared.
	AuditScrubbed = "scrubbed"
	// AuditResumed: an interrupted FASE was completed by resumption.
	AuditResumed = "resumed"
	// AuditReplayed: a logged store was re-performed before resumption
	// (JUSTDO store-granularity recovery).
	AuditReplayed = "replayed"
	// AuditRolledBack: the thread's incomplete FASEs were undone by log
	// replay (UNDO/REDO baselines).
	AuditRolledBack = "rolled-back"
)

// ThreadAudit is the audit record for one persistent thread log.
type ThreadAudit struct {
	ThreadID   int
	LogAddr    uint64
	Action     string
	RecoveryPC uint64   // raw persisted recovery_pc word (packed form)
	RegionID   uint64   // region resumed, 0 if none
	Locks      []uint64 // indirect holder addresses re-acquired
	// WordsRestored counts 8-byte words recovery restored on behalf of
	// this thread: register-file slots and staged boundary pairs for
	// resumption systems, undone/redone store targets for log-replay
	// systems.
	WordsRestored int
}

// RecoveryAudit is the full audit trail of one recovery pass.
type RecoveryAudit struct {
	Runtime string
	// Attempt is this pass's recovery-attempt index (0 for the first
	// pass since nvm.ResetRecoveryPasses). Under the chaos harness each
	// nested crash-during-recovery bumps it, so a failing schedule's
	// audit trail shows which nesting level did what.
	Attempt int
	Threads []ThreadAudit
}

// Add appends one thread record.
func (a *RecoveryAudit) Add(t ThreadAudit) { a.Threads = append(a.Threads, t) }

// Resumed counts threads whose interrupted FASE was completed by
// resumption.
func (a *RecoveryAudit) Resumed() int {
	n := 0
	for _, t := range a.Threads {
		if t.Action == AuditResumed || t.Action == AuditReplayed {
			n++
		}
	}
	return n
}

// LocksReacquired counts lock re-acquisitions across all threads.
func (a *RecoveryAudit) LocksReacquired() int {
	n := 0
	for _, t := range a.Threads {
		n += len(t.Locks)
	}
	return n
}

// WordsRestored sums restored words across all threads.
func (a *RecoveryAudit) WordsRestored() int {
	n := 0
	for _, t := range a.Threads {
		n += t.WordsRestored
	}
	return n
}

// String renders the audit as the report idorecover prints.
func (a *RecoveryAudit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recovery audit (%s, attempt %d): %d thread logs, %d resumed, %d locks re-acquired, %d words restored\n",
		a.Runtime, a.Attempt, len(a.Threads), a.Resumed(), a.LocksReacquired(), a.WordsRestored())
	for _, t := range a.Threads {
		fmt.Fprintf(&b, "  t%d log=%#x: %s", t.ThreadID, t.LogAddr, t.Action)
		if t.RegionID != 0 {
			fmt.Fprintf(&b, " region=%#x (recovery_pc %#x)", t.RegionID, t.RecoveryPC)
		} else if t.RecoveryPC != 0 {
			fmt.Fprintf(&b, " (recovery_pc %#x)", t.RecoveryPC)
		}
		if len(t.Locks) > 0 {
			fmt.Fprintf(&b, ", locks re-acquired %#x", t.Locks)
		}
		if t.WordsRestored > 0 {
			fmt.Fprintf(&b, ", %d words restored", t.WordsRestored)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
