package obs

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestRingBasics(t *testing.T) {
	tr := New(Config{ThreadRingCap: 8, DeviceRingCap: 8})
	r := tr.ThreadRing("t/0")
	r.Emit(KLockAcq, 0x40, 0)
	t0 := r.Clock()
	r.Span(KFASE, 24, 0, t0)
	r.Observe(HLogBytesPerFASE, 24)

	if got := tr.Count(KLockAcq); got != 1 {
		t.Fatalf("Count(KLockAcq) = %d, want 1", got)
	}
	if got := tr.Count(KFASE); got != 1 {
		t.Fatalf("Count(KFASE) = %d, want 1", got)
	}
	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("Events = %d, want 2", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].TS < ev[i-1].TS {
			t.Fatalf("merge not ordered: ts[%d]=%d < ts[%d]=%d", i, ev[i].TS, i-1, ev[i-1].TS)
		}
	}
	s := tr.Hist(HLogBytesPerFASE)
	if s.Count != 1 || s.Sum != 24 {
		t.Fatalf("hist summary = %+v", s)
	}
}

func TestRingDropNotTear(t *testing.T) {
	tr := New(Config{ThreadRingCap: 4, DeviceRingCap: 4})
	r := tr.ThreadRing("t/0")
	for i := 0; i < 100; i++ {
		r.Emit(KLogAppend, uint64(i), 0)
	}
	if got := tr.Count(KLogAppend); got != 100 {
		t.Fatalf("Count = %d, want 100 (counts must be exact past overflow)", got)
	}
	if got := tr.Dropped(); got != 96 {
		t.Fatalf("Dropped = %d, want 96", got)
	}
	if got := len(tr.Events()); got != 4 {
		t.Fatalf("Events = %d, want 4 (bounded, never wrapped)", got)
	}
}

func TestNilTracerAndRingAreSafe(t *testing.T) {
	var tr *Tracer
	if tr.Clock() != 0 {
		t.Fatal("nil tracer Clock != 0")
	}
	r := tr.ThreadRing("x")
	if r != nil {
		t.Fatal("nil tracer returned non-nil ring")
	}
	r.Emit(KFlush, 1, 2)
	r.Span(KFASE, 1, 2, r.Clock())
	r.Observe(HFlushNS, 5)
}

func TestDisabledPathZeroAlloc(t *testing.T) {
	var tr *Tracer
	r := tr.ThreadRing("x")
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(KBoundary, 1, 2)
		r.Span(KRegion, 1, 2, r.Clock())
		r.Observe(HRegionNS, 9)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f/op, want 0", allocs)
	}
}

func TestEnabledPathZeroAlloc(t *testing.T) {
	tr := New(Config{ThreadRingCap: 1 << 16, DeviceRingCap: 1 << 10})
	r := tr.ThreadRing("t/0")
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(KBoundary, 1, 2)
		r.Observe(HOutputsPerRegion, 3)
		tr.DevSpan(KFlush, 0x40, 0, tr.Clock())
	})
	if allocs != 0 {
		t.Fatalf("enabled tracer allocated %.1f/op, want 0 (rings are preallocated)", allocs)
	}
}

// TestHammer16 drives 16 goroutines through thread rings and the shared
// device stripes at once and checks that every event survives well-formed:
// exact counts, no torn kinds, all operand values in the written range,
// and a correctly ordered merge.
func TestHammer16(t *testing.T) {
	const (
		workers   = 16
		perWorker = 2000
	)
	tr := New(Config{ThreadRingCap: perWorker * 2, DeviceRingCap: workers * perWorker})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		r := tr.ThreadRing("hammer")
		wg.Add(1)
		go func(w int, r *Ring) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Emit(KLogAppend, uint64(w), uint64(i))
				tr.DevSpan(KFlush, uint64(w)<<32|uint64(i), 0, tr.Clock())
				tr.Observe(HRegionStores, uint64(i))
			}
		}(w, r)
	}
	wg.Wait()

	if got := tr.Count(KLogAppend); got != workers*perWorker {
		t.Fatalf("Count(KLogAppend) = %d, want %d", got, workers*perWorker)
	}
	if got := tr.Count(KFlush); got != workers*perWorker {
		t.Fatalf("Count(KFlush) = %d, want %d", got, workers*perWorker)
	}
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("Dropped = %d, want 0 (rings were sized for the load)", d)
	}
	ev := tr.Events()
	if len(ev) != 2*workers*perWorker {
		t.Fatalf("Events = %d, want %d", len(ev), 2*workers*perWorker)
	}
	perTag := map[uint64]int{}
	for i, e := range ev {
		if e.Kind != KLogAppend && e.Kind != KFlush {
			t.Fatalf("torn event kind %v", e.Kind)
		}
		if i > 0 && e.TS < ev[i-1].TS {
			t.Fatalf("merge not ordered at %d", i)
		}
		if e.Kind == KLogAppend {
			if e.A >= workers || e.B >= perWorker {
				t.Fatalf("torn operands %#x %#x", e.A, e.B)
			}
			perTag[e.A]++
		}
	}
	for w := uint64(0); w < workers; w++ {
		if perTag[w] != perWorker {
			t.Fatalf("worker %d: %d events, want %d", w, perTag[w], perWorker)
		}
	}
	if s := tr.Hist(HRegionStores); s.Count != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", s.Count, workers*perWorker)
	}
	if s := tr.Hist(HFlushNS); s.Count != workers*perWorker {
		t.Fatalf("flush hist count = %d, want %d (DevSpan feeds it)", s.Count, workers*perWorker)
	}
}

func TestChromeExportRoundTrip(t *testing.T) {
	tr := New(Config{ThreadRingCap: 64, DeviceRingCap: 64})
	r := tr.ThreadRing("ido/t0")
	t0 := r.Clock()
	r.Emit(KLockAcq, 0x5040, 0)
	r.Emit(KBoundary, 0x2001, 3)
	tr.DevSpan(KFlush, 0x40, 0, tr.Clock())
	tr.DevSpan(KFence, 0, 0, tr.Clock())
	r.Span(KFASE, 32, 0, t0)
	r.Emit(KLockRel, 0x5040, 0)

	path := filepath.Join(t.TempDir(), "trace.json")
	n, err := tr.ExportChromeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("exported %d events, want 6", n)
	}
	for _, k := range []Kind{KFlush, KFence, KBoundary} {
		got, err := CountInFile(path, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != int(tr.Count(k)) {
			t.Fatalf("%v: file has %d, tracer counted %d", k, got, tr.Count(k))
		}
	}
	raw, _ := os.ReadFile(path)
	if len(raw) == 0 {
		t.Fatal("empty trace file")
	}
}

func TestHistPercentiles(t *testing.T) {
	tr := New(Config{})
	for i := 0; i < 90; i++ {
		tr.Observe(HFenceNS, 100) // bucket 7 (64..127)
	}
	for i := 0; i < 10; i++ {
		tr.Observe(HFenceNS, 4000) // bucket 12 (2048..4095)
	}
	s := tr.Hist(HFenceNS)
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 != 127 {
		t.Fatalf("p50 = %d, want 127 (bucket upper bound)", s.P50)
	}
	if s.P99 != 4095 {
		t.Fatalf("p99 = %d, want 4095", s.P99)
	}
	if s.Mean < 480 || s.Mean > 500 {
		t.Fatalf("mean = %v, want 490", s.Mean)
	}
	if s.Max != 4095 {
		t.Fatalf("max = %d, want 4095", s.Max)
	}
}

func TestSampleEveryThinsRingsNotCounts(t *testing.T) {
	tr := New(Config{
		ThreadRingCap: 1 << 10,
		DeviceRingCap: 1 << 10,
		SampleEvery:   map[Kind]int{KNTStore: 10},
	})
	r := tr.ThreadRing("t/0")
	for i := 0; i < 100; i++ {
		r.Emit(KNTStore, uint64(i), 0)
		r.Emit(KFlush, uint64(i), 0) // unsampled kind: recorded in full
	}
	if got := tr.Count(KNTStore); got != 100 {
		t.Fatalf("Count(KNTStore) = %d, want 100 (counts must stay exact)", got)
	}
	if got := tr.SampledOut(); got != 90 {
		t.Fatalf("SampledOut = %d, want 90", got)
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0 (sampling is not dropping)", got)
	}
	var nt, fl int
	for _, e := range tr.Events() {
		switch e.Kind {
		case KNTStore:
			nt++
		case KFlush:
			fl++
		}
	}
	if nt != 10 {
		t.Fatalf("ring holds %d nt-store events, want 10 (1-in-10)", nt)
	}
	if fl != 100 {
		t.Fatalf("ring holds %d flush events, want all 100", fl)
	}
}

func TestSampleEveryFirstOccurrenceKept(t *testing.T) {
	// A sampled kind must still record its first occurrence per ring, so a
	// rare event under an aggressive knob is never silently invisible.
	tr := New(Config{SampleEvery: map[Kind]int{KEvict: 1000}})
	tr.DevEmit(KEvict, 0x40, 0)
	var seen bool
	for _, e := range tr.Events() {
		if e.Kind == KEvict {
			seen = true
		}
	}
	if !seen {
		t.Fatal("first evict event was sampled out")
	}
	if got := tr.Count(KEvict); got != 1 {
		t.Fatalf("Count(KEvict) = %d, want 1", got)
	}
}
