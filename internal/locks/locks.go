// Package locks implements transient mutexes paired with persistent
// *indirect lock holders* (iDO §III-B). The key insight from the paper is
// that mutexes themselves never need to be persistent — after a crash every
// mutex must be unlocked anyway — so each transient lock is represented in
// NVM only by an immutable holder cell. During normal execution a runtime
// records the holder's address in the owning thread's persistent lock
// array; after a crash, recovery allocates a fresh transient lock for each
// holder address it finds and hands it to the resuming thread.
package locks

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/region"
)

// holderMagic marks an NVM cell as an indirect lock holder.
const holderMagic = 0x1D0_10CC

// Lock is a transient mutex identified persistently by its holder address.
type Lock struct {
	mu     sync.Mutex
	holder uint64
}

// Acquire locks the transient mutex. Persistence bookkeeping (lock-array
// updates, fences) is the runtime's job, not the lock's. While crash
// injection is armed (nvm.ArmCrash), waiters spin so that a machine-wide
// injected crash also kills goroutines blocked on locks — under a real
// power failure nobody keeps waiting.
func (l *Lock) Acquire() {
	if !nvm.CrashArmed() {
		l.mu.Lock()
		return
	}
	for !l.mu.TryLock() {
		if nvm.CrashFired() {
			panic(nvm.CrashSignal{})
		}
		runtime.Gosched()
	}
}

// Release unlocks the transient mutex.
func (l *Lock) Release() { l.mu.Unlock() }

// TryAcquire attempts the lock without blocking.
func (l *Lock) TryAcquire() bool { return l.mu.TryLock() }

// Holder returns the NVM address of the lock's indirect holder cell.
func (l *Lock) Holder() uint64 { return l.holder }

// Manager allocates holders and maps holder addresses to transient locks.
// After a crash a new Manager re-creates transient locks on demand; two
// requests for the same holder always return the same lock.
type Manager struct {
	reg *region.Region

	mu       sync.Mutex
	byHolder map[uint64]*Lock
}

// NewManager creates a lock manager over a region.
func NewManager(reg *region.Region) *Manager {
	return &Manager{reg: reg, byHolder: make(map[uint64]*Lock)}
}

// Create allocates a fresh indirect holder in NVM and returns its lock.
// The holder cell is persisted before Create returns, so its address may
// immediately be stored in persistent structures.
func (m *Manager) Create() (*Lock, error) {
	addr, err := m.reg.Alloc.Alloc(8)
	if err != nil {
		return nil, fmt.Errorf("locks: allocating holder: %w", err)
	}
	m.reg.Dev.Store64(addr, holderMagic)
	m.reg.Dev.CLWB(addr)
	m.reg.Dev.Fence()
	l := &Lock{holder: addr}
	m.mu.Lock()
	m.byHolder[addr] = l
	m.mu.Unlock()
	return l, nil
}

// ByHolder returns the transient lock for a holder address, creating it if
// this is the first reference since (re)start — the post-crash path where
// "the recovery procedure will allocate a new transient lock for every
// indirect lock holder" (§III-B).
func (m *Manager) ByHolder(addr uint64) *Lock {
	m.mu.Lock()
	defer m.mu.Unlock()
	if l, ok := m.byHolder[addr]; ok {
		return l
	}
	if got := m.reg.Dev.Load64(addr); got != holderMagic {
		panic(fmt.Sprintf("locks: %#x is not a lock holder (contains %#x)", addr, got))
	}
	l := &Lock{holder: addr}
	m.byHolder[addr] = l
	return l
}

// Count reports how many transient locks the manager currently tracks.
func (m *Manager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byHolder)
}
