package locks

import (
	"sync"
	"testing"

	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/region"
)

func newMgr(t *testing.T) (*region.Region, *Manager) {
	t.Helper()
	reg := region.Create(1<<16, nvm.Config{})
	return reg, NewManager(reg)
}

func TestCreateAndMutualExclusion(t *testing.T) {
	_, m := newMgr(t)
	l, err := m.Create()
	if err != nil {
		t.Fatal(err)
	}
	var counter int
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Acquire()
				counter++
				l.Release()
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestHolderSurvivesCrashAndMapsToFreshLock(t *testing.T) {
	reg, m := newMgr(t)
	l, err := m.Create()
	if err != nil {
		t.Fatal(err)
	}
	holder := l.Holder()
	l.Acquire() // held at crash time

	reg2, err := reg.Crash(nvm.CrashDiscard, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(reg2)
	nl := m2.ByHolder(holder)
	// The fresh transient lock starts unlocked, per §III-B.
	if !nl.TryAcquire() {
		t.Fatal("recovered lock not free")
	}
	nl.Release()
	// Same holder -> same lock object.
	if m2.ByHolder(holder) != nl {
		t.Fatal("ByHolder not idempotent")
	}
	if m2.Count() != 1 {
		t.Fatalf("count = %d", m2.Count())
	}
}

func TestByHolderRejectsGarbageAddress(t *testing.T) {
	reg, m := newMgr(t)
	p, _ := reg.Alloc.Alloc(8)
	reg.Dev.Store64(p, 12345)
	defer func() {
		if recover() == nil {
			t.Fatal("garbage holder accepted")
		}
	}()
	m.ByHolder(p)
}

func TestTryAcquire(t *testing.T) {
	_, m := newMgr(t)
	l, _ := m.Create()
	if !l.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if l.TryAcquire() {
		t.Fatal("second TryAcquire succeeded")
	}
	l.Release()
}

func TestAcquireUnderArmedInjectionStillExcludes(t *testing.T) {
	// With injection armed but a huge budget, the spin path must still
	// provide mutual exclusion.
	_, m := newMgr(t)
	l, _ := m.Create()
	nvm.ArmCrash(1 << 60)
	defer nvm.ArmCrash(-1)
	var counter int
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				l.Acquire()
				counter++
				l.Release()
			}
		}()
	}
	wg.Wait()
	if counter != 2000 {
		t.Fatalf("counter = %d", counter)
	}
}
