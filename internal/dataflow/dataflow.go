// Package dataflow provides the classic analyses the iDO compiler needs:
// reverse postorder, dominators, back-edge detection, and per-instruction
// liveness. All analyses operate on ir.Func CFGs.
package dataflow

import (
	"github.com/ido-nvm/ido/internal/ir"
)

// RPO returns the blocks of f in reverse postorder from the entry.
// Unreachable blocks are appended at the end in index order.
func RPO(f *ir.Func) []int {
	n := len(f.Blocks)
	seen := make([]bool, n)
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range f.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	out := make([]int, 0, n)
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for b := 0; b < n; b++ {
		if !seen[b] {
			out = append(out, b)
		}
	}
	return out
}

// Dominators computes the immediate dominator of every reachable block
// using the Cooper–Harvey–Kennedy iterative algorithm. idom[0] == 0;
// unreachable blocks get idom -1.
func Dominators(f *ir.Func) []int {
	rpo := RPO(f)
	order := make([]int, len(f.Blocks)) // block -> rpo position
	for i, b := range rpo {
		order[b] = i
	}
	idom := make([]int, len(f.Blocks))
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range f.Blocks[b].Preds {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b given idom.
func Dominates(idom []int, a, b int) bool {
	for {
		if b == a {
			return true
		}
		if b == 0 || idom[b] == -1 {
			return a == 0 && idom[b] != -1 || a == b
		}
		if idom[b] == b {
			return a == b
		}
		b = idom[b]
	}
}

// BackEdge is a CFG edge whose target dominates its source (a loop edge).
type BackEdge struct{ From, To int }

// BackEdges returns the loop back edges of f.
func BackEdges(f *ir.Func) []BackEdge {
	idom := Dominators(f)
	var out []BackEdge
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if idom[s] != -1 && Dominates(idom, s, b.Index) {
				out = append(out, BackEdge{From: b.Index, To: s})
			}
		}
	}
	return out
}

// RegSet is a dense bitset over a function's virtual registers.
type RegSet []uint64

// NewRegSet returns an empty set sized for n registers.
func NewRegSet(n int) RegSet { return make(RegSet, (n+63)/64) }

// Has reports membership.
func (s RegSet) Has(r ir.Reg) bool { return s[int(r)/64]&(1<<(uint(r)%64)) != 0 }

// Add inserts r and reports whether the set changed.
func (s RegSet) Add(r ir.Reg) bool {
	w, m := int(r)/64, uint64(1)<<(uint(r)%64)
	if s[w]&m != 0 {
		return false
	}
	s[w] |= m
	return true
}

// Remove deletes r.
func (s RegSet) Remove(r ir.Reg) { s[int(r)/64] &^= 1 << (uint(r) % 64) }

// Union merges o into s and reports whether s changed.
func (s RegSet) Union(o RegSet) bool {
	changed := false
	for i := range s {
		if n := s[i] | o[i]; n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Clone copies the set.
func (s RegSet) Clone() RegSet {
	out := make(RegSet, len(s))
	copy(out, s)
	return out
}

// Regs lists the members in ascending order.
func (s RegSet) Regs() []ir.Reg {
	var out []ir.Reg
	for w, bits := range s {
		for bits != 0 {
			b := bits & (-bits)
			i := 0
			for (b >> uint(i)) != 1 {
				i++
			}
			out = append(out, ir.Reg(w*64+i))
			bits &^= b
		}
	}
	return out
}

// Count returns the cardinality.
func (s RegSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Liveness holds per-block and per-instruction live-register information.
type Liveness struct {
	f *ir.Func
	// LiveIn[b] / LiveOut[b] are the registers live at block b's entry
	// and exit.
	LiveIn, LiveOut []RegSet
	// liveAt[b][i] is the set of registers live immediately BEFORE
	// instruction i of block b.
	liveAt [][]RegSet
}

// ComputeLiveness runs backward liveness to a fixpoint.
func ComputeLiveness(f *ir.Func) *Liveness {
	n := len(f.Blocks)
	lv := &Liveness{
		f:       f,
		LiveIn:  make([]RegSet, n),
		LiveOut: make([]RegSet, n),
	}
	for i := 0; i < n; i++ {
		lv.LiveIn[i] = NewRegSet(f.NumRegs)
		lv.LiveOut[i] = NewRegSet(f.NumRegs)
	}
	rpo := RPO(f)
	changed := true
	for changed {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := f.Blocks[rpo[i]]
			out := lv.LiveOut[b.Index]
			for _, s := range b.Succs {
				if out.Union(lv.LiveIn[s]) {
					changed = true
				}
			}
			in := out.Clone()
			for k := len(b.Instrs) - 1; k >= 0; k-- {
				instr := &b.Instrs[k]
				if instr.Dest != ir.NoReg {
					in.Remove(instr.Dest)
				}
				for _, a := range instr.Args {
					if !a.IsImm {
						in.Add(a.Reg)
					}
				}
			}
			// Compare and swap LiveIn.
			for w := range in {
				if in[w] != lv.LiveIn[b.Index][w] {
					lv.LiveIn[b.Index] = in
					changed = true
					break
				}
			}
		}
	}
	// Per-instruction sets.
	lv.liveAt = make([][]RegSet, n)
	for _, b := range f.Blocks {
		sets := make([]RegSet, len(b.Instrs)+1)
		cur := lv.LiveOut[b.Index].Clone()
		sets[len(b.Instrs)] = cur.Clone()
		for k := len(b.Instrs) - 1; k >= 0; k-- {
			instr := &b.Instrs[k]
			if instr.Dest != ir.NoReg {
				cur.Remove(instr.Dest)
			}
			for _, a := range instr.Args {
				if !a.IsImm {
					cur.Add(a.Reg)
				}
			}
			sets[k] = cur.Clone()
		}
		lv.liveAt[b.Index] = sets
	}
	return lv
}

// LiveBefore returns the registers live immediately before instruction
// idx of block b (idx == len(instrs) gives the block's live-out).
func (lv *Liveness) LiveBefore(b, idx int) RegSet { return lv.liveAt[b][idx] }
