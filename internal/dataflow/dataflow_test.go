package dataflow

import (
	"testing"
	"testing/quick"

	"github.com/ido-nvm/ido/internal/ir"
)

const loopSrc = `
func count 1 {
entry:
  i = const 0
  sum = const 0
  jmp loop
loop:
  c = lt i r0
  br c body done
body:
  sum = add sum i
  i = add i 1
  jmp loop
done:
  ret sum
}
`

func mustParse(t *testing.T, src string) *ir.Func {
	t.Helper()
	f, err := ir.ParseFunc(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRPOStartsAtEntryVisitsAll(t *testing.T) {
	f := mustParse(t, loopSrc)
	rpo := RPO(f)
	if rpo[0] != 0 {
		t.Fatalf("rpo[0] = %d", rpo[0])
	}
	if len(rpo) != len(f.Blocks) {
		t.Fatalf("rpo covers %d of %d blocks", len(rpo), len(f.Blocks))
	}
	seen := map[int]bool{}
	for _, b := range rpo {
		if seen[b] {
			t.Fatalf("block %d visited twice", b)
		}
		seen[b] = true
	}
}

func TestDominatorsLoop(t *testing.T) {
	f := mustParse(t, loopSrc)
	idom := Dominators(f)
	// entry(0) -> loop(1) -> {body(2), done(3)}; body -> loop.
	if idom[1] != 0 || idom[2] != 1 || idom[3] != 1 {
		t.Fatalf("idom = %v", idom)
	}
	if !Dominates(idom, 0, 3) || !Dominates(idom, 1, 2) {
		t.Fatal("Dominates failed on obvious pairs")
	}
	if Dominates(idom, 2, 3) {
		t.Fatal("body should not dominate done")
	}
}

func TestBackEdges(t *testing.T) {
	f := mustParse(t, loopSrc)
	be := BackEdges(f)
	if len(be) != 1 || be[0].From != 2 || be[0].To != 1 {
		t.Fatalf("back edges = %v", be)
	}
}

func TestNoBackEdgesInDAG(t *testing.T) {
	f := mustParse(t, `
func f 1 {
entry:
  br r0 a b
a:
  jmp join
b:
  jmp join
join:
  ret
}
`)
	if be := BackEdges(f); len(be) != 0 {
		t.Fatalf("back edges in DAG: %v", be)
	}
}

func TestLivenessLoop(t *testing.T) {
	f := mustParse(t, loopSrc)
	lv := ComputeLiveness(f)
	// At loop entry: i, sum, r0 are live.
	names := map[string]ir.Reg{}
	for r, n := range f.RegNames {
		names[n] = r
	}
	in := lv.LiveIn[1]
	for _, want := range []string{"i", "sum"} {
		if !in.Has(names[want]) {
			t.Fatalf("%s not live into loop header", want)
		}
	}
	if !in.Has(ir.Reg(0)) {
		t.Fatal("r0 not live into loop header")
	}
	// After done: nothing needs to be live out.
	if lv.LiveOut[3].Count() != 0 {
		t.Fatalf("live out of exit = %v", lv.LiveOut[3].Regs())
	}
	// c is live between the compare and the branch only.
	c := names["c"]
	if !lv.LiveBefore(1, 1).Has(c) {
		t.Fatal("c not live before branch")
	}
	if lv.LiveBefore(1, 0).Has(c) {
		t.Fatal("c live before its definition")
	}
}

func TestLivenessStraightLine(t *testing.T) {
	f := mustParse(t, `
func f 2 {
entry:
  x = add r0 r1
  y = add x 1
  ret y
}
`)
	lv := ComputeLiveness(f)
	if got := lv.LiveIn[0].Count(); got != 2 {
		t.Fatalf("entry live-in = %d, want 2 (params)", got)
	}
}

func TestRegSetProperties(t *testing.T) {
	f := func(elems []uint8) bool {
		s := NewRegSet(256)
		ref := map[ir.Reg]bool{}
		for _, e := range elems {
			r := ir.Reg(e)
			s.Add(r)
			ref[r] = true
		}
		if s.Count() != len(ref) {
			return false
		}
		for r := range ref {
			if !s.Has(r) {
				return false
			}
		}
		for _, r := range s.Regs() {
			if !ref[r] {
				return false
			}
		}
		// Remove everything.
		for r := range ref {
			s.Remove(r)
		}
		return s.Count() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegSetUnion(t *testing.T) {
	a := NewRegSet(128)
	b := NewRegSet(128)
	a.Add(3)
	b.Add(70)
	if !a.Union(b) {
		t.Fatal("union reported no change")
	}
	if !a.Has(3) || !a.Has(70) {
		t.Fatal("union lost members")
	}
	if a.Union(b) {
		t.Fatal("second union reported change")
	}
}

func TestReachingDefsStraightLine(t *testing.T) {
	f := mustParse(t, `
func f 1 {
entry:
  x = const 1
  x = add x 1
  y = add x r0
  ret y
}
`)
	r := ComputeReaching(f)
	names := map[string]ir.Reg{}
	for reg, n := range f.RegNames {
		names[n] = reg
	}
	x := names["x"]
	// Before instruction 1 (x = add x 1), only def at index 0 reaches.
	d := r.DefsReaching(0, 1, x)
	if len(d) != 1 || d[0].Loc.Index != 0 {
		t.Fatalf("defs before redefinition: %v", d)
	}
	// Before instruction 2, only the redefinition reaches.
	d = r.DefsReaching(0, 2, x)
	if len(d) != 1 || d[0].Loc.Index != 1 {
		t.Fatalf("defs after redefinition: %v", d)
	}
	// Parameter r0 reaches everywhere from its synthetic site.
	d = r.DefsReaching(0, 2, 0)
	if len(d) != 1 || d[0].Loc != ParamLoc(0) {
		t.Fatalf("param def: %v", d)
	}
}

func TestReachingDefsMerge(t *testing.T) {
	f := mustParse(t, `
func f 1 {
entry:
  br r0 a b
a:
  x = const 1
  jmp join
b:
  x = const 2
  jmp join
join:
  y = add x 0
  ret y
}
`)
	r := ComputeReaching(f)
	var x ir.Reg
	for reg, n := range f.RegNames {
		if n == "x" {
			x = reg
		}
	}
	d := r.DefsReaching(3, 0, x)
	if len(d) != 2 {
		t.Fatalf("both branch defs should reach the join: %v", d)
	}
}

func TestReachingDefsLoop(t *testing.T) {
	f := mustParse(t, loopSrc)
	r := ComputeReaching(f)
	var i ir.Reg
	for reg, n := range f.RegNames {
		if n == "i" {
			i = reg
		}
	}
	// At the loop header both the init and the increment reach.
	d := r.DefsReaching(1, 0, i)
	if len(d) != 2 {
		t.Fatalf("loop header defs of i: %v", d)
	}
}

func TestDefUseChains(t *testing.T) {
	f := mustParse(t, `
func f 1 {
entry:
  x = const 5
  y = add x x
  z = add x y
  ret z
}
`)
	du := ComputeDefUse(f)
	var x ir.Reg
	for reg, n := range f.RegNames {
		if n == "x" {
			x = reg
		}
	}
	uses := du[DefSite{Reg: x, Loc: ir.Loc{Block: 0, Index: 0}}]
	// x is used by instructions 1 (twice -> recorded twice) and 2.
	if len(uses) != 3 {
		t.Fatalf("uses of x: %v", uses)
	}
	// The parameter is unused.
	if len(du[DefSite{Reg: 0, Loc: ParamLoc(0)}]) != 0 {
		t.Fatal("phantom uses of the parameter")
	}
}
