package dataflow

import (
	"github.com/ido-nvm/ido/internal/ir"
)

// DefSite identifies one register definition: the instruction at Loc
// defines Reg. Parameter registers have a synthetic definition at
// ir.Loc{Block: -1, Index: i} for parameter i.
type DefSite struct {
	Reg ir.Reg
	Loc ir.Loc
}

// ParamLoc returns the synthetic definition location of parameter i.
func ParamLoc(i int) ir.Loc { return ir.Loc{Block: -1, Index: i} }

// Reaching holds the reaching-definitions solution for one function.
type Reaching struct {
	f *ir.Func
	// defs enumerates every definition site, indexed densely.
	defs []DefSite
	// defID maps a site to its dense index.
	defID map[DefSite]int
	// byReg lists the definition indices of each register.
	byReg map[ir.Reg][]int
	// in[b] is the bitset of definitions reaching block b's entry.
	in []RegSet // reused as a generic bitset over definition IDs
}

// ComputeReaching runs classic reaching definitions to a fixpoint.
func ComputeReaching(f *ir.Func) *Reaching {
	r := &Reaching{f: f, defID: map[DefSite]int{}, byReg: map[ir.Reg][]int{}}
	addDef := func(d DefSite) {
		if _, ok := r.defID[d]; ok {
			return
		}
		r.defID[d] = len(r.defs)
		r.byReg[d.Reg] = append(r.byReg[d.Reg], len(r.defs))
		r.defs = append(r.defs, d)
	}
	for i := 0; i < f.NumParams; i++ {
		addDef(DefSite{Reg: ir.Reg(i), Loc: ParamLoc(i)})
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Dest; d != ir.NoReg {
				addDef(DefSite{Reg: d, Loc: ir.Loc{Block: b.Index, Index: i}})
			}
		}
	}

	n := len(f.Blocks)
	nd := len(r.defs)
	r.in = make([]RegSet, n)
	out := make([]RegSet, n)
	for i := 0; i < n; i++ {
		r.in[i] = NewRegSet(nd)
		out[i] = NewRegSet(nd)
	}
	// Entry: parameters reach.
	for i := 0; i < f.NumParams; i++ {
		r.in[0].Add(ir.Reg(r.defID[DefSite{Reg: ir.Reg(i), Loc: ParamLoc(i)}]))
	}

	transfer := func(b *ir.Block, in RegSet) RegSet {
		cur := in.Clone()
		for i := range b.Instrs {
			d := b.Instrs[i].Dest
			if d == ir.NoReg {
				continue
			}
			// Kill every other definition of d, generate this one.
			for _, id := range r.byReg[d] {
				cur.Remove(ir.Reg(id))
			}
			cur.Add(ir.Reg(r.defID[DefSite{Reg: d, Loc: ir.Loc{Block: b.Index, Index: i}}]))
		}
		return cur
	}

	rpo := RPO(f)
	for changed := true; changed; {
		changed = false
		for _, bi := range rpo {
			b := f.Blocks[bi]
			if bi != 0 {
				merged := NewRegSet(nd)
				for _, p := range b.Preds {
					merged.Union(out[p])
				}
				for w := range merged {
					if merged[w] != r.in[bi][w] {
						r.in[bi] = merged
						changed = true
						break
					}
				}
			}
			newOut := transfer(b, r.in[bi])
			for w := range newOut {
				if newOut[w] != out[bi][w] {
					out[bi] = newOut
					changed = true
					break
				}
			}
		}
	}
	return r
}

// DefsReaching returns the definition sites of reg that reach the point
// immediately before instruction (b, idx).
func (r *Reaching) DefsReaching(b, idx int, reg ir.Reg) []DefSite {
	cur := r.in[b].Clone()
	blk := r.f.Blocks[b]
	for i := 0; i < idx; i++ {
		d := blk.Instrs[i].Dest
		if d == ir.NoReg {
			continue
		}
		for _, id := range r.byReg[d] {
			cur.Remove(ir.Reg(id))
		}
		cur.Add(ir.Reg(r.defID[DefSite{Reg: d, Loc: ir.Loc{Block: b, Index: i}}]))
	}
	var outSites []DefSite
	for _, id := range r.byReg[reg] {
		if cur.Has(ir.Reg(id)) {
			outSites = append(outSites, r.defs[id])
		}
	}
	return outSites
}

// DefUse is the def-use chain map: for each definition site, the
// instruction locations that may use it.
type DefUse map[DefSite][]ir.Loc

// ComputeDefUse builds def-use chains from the reaching solution.
func ComputeDefUse(f *ir.Func) DefUse {
	r := ComputeReaching(f)
	du := DefUse{}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			use := ir.Loc{Block: b.Index, Index: i}
			for _, a := range b.Instrs[i].Args {
				if a.IsImm {
					continue
				}
				for _, d := range r.DefsReaching(b.Index, i, a.Reg) {
					du[d] = append(du[d], use)
				}
			}
		}
	}
	return du
}
