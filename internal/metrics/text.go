package metrics

import (
	"github.com/ido-nvm/ido/internal/obs"

	"strconv"
)

// In-band protocol exposure: the memcache `stats` verb and the RESP
// `INFO` command render from the same Snapshot the admin plane serves,
// so existing memcache/redis tooling reads the stack's live state
// unmodified. Both renderers append to a caller buffer and are only
// invoked on the reading side of a connection for an explicit stats
// request — never on the per-request hot path.

func appendStat(b []byte, name string, v uint64) []byte {
	b = append(b, "STAT "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, v, 10)
	return append(b, '\r', '\n')
}

func appendStatF(b []byte, name string, v float64) []byte {
	b = append(b, "STAT "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = strconv.AppendFloat(b, v, 'f', 4, 64)
	return append(b, '\r', '\n')
}

// AppendMemcacheStats appends the memcache text-protocol `stats`
// response (STAT lines + END) for s. Field order is fixed: the golden
// wire tests depend on it, and so may scripts built on `nc`.
func AppendMemcacheStats(b []byte, s *Snapshot) []byte {
	uptime := uint64(s.UptimeNS / 1e9)
	var gets, sets, dels, incrs, hits, misses uint64
	var fgets, fretries, fparks, ffalls, touches, evicts uint64
	for i := range s.Srv.Shards {
		sh := &s.Srv.Shards[i]
		gets += sh.Gets
		sets += sh.Sets
		dels += sh.Dels
		incrs += sh.Incrs
		hits += sh.Hits
		misses += sh.Misses
		fgets += sh.FastGets
		fretries += sh.FastRetries
		fparks += sh.FastParks
		ffalls += sh.FastFallbacks
		touches += sh.Touches
		evicts += sh.Evictions
	}
	b = appendStat(b, "uptime", uptime)
	b = appendStat(b, "curr_connections", uint64(s.Srv.ConnsOpen))
	b = appendStat(b, "total_connections", s.Srv.ConnsTotal)
	b = appendStat(b, "cmd_get", gets)
	b = appendStat(b, "cmd_set", sets)
	b = appendStat(b, "cmd_delete", dels)
	b = appendStat(b, "cmd_incr", incrs)
	b = appendStat(b, "get_hits", hits)
	b = appendStat(b, "get_misses", misses)
	b = appendStat(b, "evictions", evicts)
	b = appendStat(b, "bytes_read", s.Srv.BytesIn)
	b = appendStat(b, "bytes_written", s.Srv.BytesOut)
	b = appendStat(b, "protocol_errors", s.Srv.ProtoErrs)
	b = appendStat(b, "rejected_connections", s.Srv.ConnsRejected)
	b = appendStat(b, "idle_kicks", s.Srv.IdleClosed)
	b = appendStat(b, "ido_requests", s.Srv.Reqs)
	b = appendStat(b, "ido_shards", uint64(len(s.Srv.Shards)))
	b = appendStat(b, "ido_fast_gets", fgets)
	b = appendStat(b, "ido_fast_retries", fretries)
	b = appendStat(b, "ido_fast_parks", fparks)
	b = appendStat(b, "ido_fast_fallbacks", ffalls)
	b = appendStat(b, "ido_touch_fases", touches)
	b = appendStat(b, "ido_fences", s.Dev.Fences)
	b = appendStat(b, "ido_flushes", s.Dev.Flushes)
	b = appendStat(b, "ido_nt_stores", s.Dev.NTStores)
	b = appendStat(b, "ido_crashes", s.Dev.Crashes)
	if s.Srv.Reqs > 0 {
		b = appendStatF(b, "ido_fences_per_op", float64(s.Dev.Fences)/float64(s.Srv.Reqs))
	}
	b = appendStat(b, "ido_gc_epochs", s.GC.Epochs)
	b = appendStat(b, "ido_gc_combined", s.GC.Combined)
	lat := &s.Obs.Hists[obs.HReqLatency]
	b = appendStat(b, "ido_req_p50_ns", lat.Quantile(0.50))
	b = appendStat(b, "ido_req_p99_ns", lat.Quantile(0.99))
	b = appendStat(b, "ido_repl_role", uint64(s.Repl.Role))
	b = appendStat(b, "ido_repl_attached", uint64(s.Repl.Attached))
	b = appendStat(b, "ido_repl_records", s.Repl.Records)
	b = appendStat(b, "ido_repl_bytes", s.Repl.Bytes)
	b = appendStat(b, "ido_repl_acked", s.Repl.AckedRecs)
	b = appendStat(b, "ido_repl_degraded", s.Repl.Degraded)
	b = appendStat(b, "ido_repl_lag_records", s.Repl.LagRecs)
	b = appendStat(b, "ido_repl_lag_bytes", s.Repl.LagBytes)
	b = appendStat(b, "ido_repl_lag_ns", uint64(s.Repl.LagNS))
	b = appendStat(b, "ido_repl_reconnects", s.Repl.Reconnects)
	b = appendStat(b, "ido_repl_failovers", s.Repl.Failovers)
	return append(b, "END\r\n"...)
}

func appendInfo(b []byte, name string, v uint64) []byte {
	b = append(b, name...)
	b = append(b, ':')
	b = strconv.AppendUint(b, v, 10)
	return append(b, '\r', '\n')
}

func appendInfoF(b []byte, name string, v float64) []byte {
	b = append(b, name...)
	b = append(b, ':')
	b = strconv.AppendFloat(b, v, 'f', 4, 64)
	return append(b, '\r', '\n')
}

// AppendRESPInfo appends the RESP `INFO` response — one bulk string of
// `key:value` lines under `# Section` headers, redis-style — for s.
// Field order is fixed for the golden wire tests.
func AppendRESPInfo(b []byte, s *Snapshot) []byte {
	payload := appendInfoPayload(nil, s)
	b = append(b, '$')
	b = strconv.AppendInt(b, int64(len(payload)), 10)
	b = append(b, '\r', '\n')
	b = append(b, payload...)
	return append(b, '\r', '\n')
}

func appendInfoPayload(b []byte, s *Snapshot) []byte {
	var gets, sets, dels, incrs, hits, misses uint64
	var fgets, ffalls, evicts uint64
	for i := range s.Srv.Shards {
		sh := &s.Srv.Shards[i]
		gets += sh.Gets
		sets += sh.Sets
		dels += sh.Dels
		incrs += sh.Incrs
		hits += sh.Hits
		misses += sh.Misses
		fgets += sh.FastGets
		ffalls += sh.FastFallbacks
		evicts += sh.Evictions
	}
	b = append(b, "# Server\r\n"...)
	b = appendInfo(b, "uptime_in_seconds", uint64(s.UptimeNS/1e9))
	b = append(b, "# Clients\r\n"...)
	b = appendInfo(b, "connected_clients", uint64(s.Srv.ConnsOpen))
	b = append(b, "# Stats\r\n"...)
	b = appendInfo(b, "total_connections_received", s.Srv.ConnsTotal)
	b = appendInfo(b, "total_commands_processed", s.Srv.Reqs)
	b = appendInfo(b, "total_net_input_bytes", s.Srv.BytesIn)
	b = appendInfo(b, "total_net_output_bytes", s.Srv.BytesOut)
	b = appendInfo(b, "total_reads_processed", gets)
	b = appendInfo(b, "total_writes_processed", sets+dels+incrs)
	b = appendInfo(b, "fastlane_reads_processed", fgets)
	b = appendInfo(b, "fastlane_fallbacks", ffalls)
	b = appendInfo(b, "keyspace_hits", hits)
	b = appendInfo(b, "keyspace_misses", misses)
	b = appendInfo(b, "evicted_keys", evicts)
	b = appendInfo(b, "protocol_errors", s.Srv.ProtoErrs)
	b = appendInfo(b, "rejected_connections", s.Srv.ConnsRejected)
	b = appendInfo(b, "idle_closed_connections", s.Srv.IdleClosed)
	b = append(b, "# Persistence\r\n"...)
	b = appendInfo(b, "ido_fences", s.Dev.Fences)
	b = appendInfo(b, "ido_flushes", s.Dev.Flushes)
	b = appendInfo(b, "ido_nt_stores", s.Dev.NTStores)
	b = appendInfo(b, "ido_crashes", s.Dev.Crashes)
	if s.Srv.Reqs > 0 {
		b = appendInfoF(b, "ido_fences_per_op", float64(s.Dev.Fences)/float64(s.Srv.Reqs))
	}
	b = appendInfo(b, "ido_gc_epochs", s.GC.Epochs)
	b = appendInfo(b, "ido_gc_combined", s.GC.Combined)
	b = append(b, "# Replication\r\n"...)
	switch s.Repl.Role {
	case ReplRolePrimary:
		b = append(b, "role:master\r\n"...)
	case ReplRoleStandby:
		b = append(b, "role:slave\r\n"...)
	default:
		b = append(b, "role:none\r\n"...)
	}
	b = appendInfo(b, "connected_slaves", uint64(s.Repl.Attached))
	b = appendInfo(b, "repl_records", s.Repl.Records)
	b = appendInfo(b, "repl_bytes", s.Repl.Bytes)
	b = appendInfo(b, "repl_acked_records", s.Repl.AckedRecs)
	b = appendInfo(b, "repl_degraded", s.Repl.Degraded)
	b = appendInfo(b, "repl_lag_records", s.Repl.LagRecs)
	b = appendInfo(b, "repl_lag_bytes", s.Repl.LagBytes)
	b = appendInfo(b, "repl_lag_ns", uint64(s.Repl.LagNS))
	b = appendInfo(b, "repl_reconnects", s.Repl.Reconnects)
	b = appendInfo(b, "repl_failovers", s.Repl.Failovers)
	b = append(b, "# Latency\r\n"...)
	lat := &s.Obs.Hists[obs.HReqLatency]
	b = appendInfo(b, "req_p50_ns", lat.Quantile(0.50))
	b = appendInfo(b, "req_p99_ns", lat.Quantile(0.99))
	return b
}
