package metrics

import (
	"fmt"
	"io"
	"strconv"

	"github.com/ido-nvm/ido/internal/obs"
)

// Prometheus text exposition (version 0.0.4). Naming scheme (documented
// in internal/obs/README.md):
//
//   - cumulative counters end in _total;
//   - instantaneous gauges carry no suffix (queue depth, conns open,
//     and the interval-derived rates like ido_fences_per_op);
//   - log2 histograms export as native Prometheus histograms
//     (_bucket{le="2^i-1"}, _sum, _count) so PromQL histogram_quantile
//     works on them directly;
//   - per-shard series carry a shard="N" label, per-kind event counts a
//     kind="..." label.

// histExport lists the tracer histograms worth scraping continuously;
// the rest remain reachable via /debug/snapshot.
var histExport = []struct {
	h    obs.HistKind
	name string
	help string
}{
	{obs.HReqLatency, "ido_req_latency_ns", "Server-side request latency, parse done to response handed to writer."},
	{obs.HFlushNS, "ido_flush_ns", "Observed latency of each cache-line write-back."},
	{obs.HFenceNS, "ido_fence_ns", "Observed stall of each persist fence."},
	{obs.HFASEsPerFence, "ido_gc_fases_per_fence", "FASE commits amortized by each merged group-commit fence."},
}

// WritePrometheus renders cur (and the interval gauges in d, which may
// be nil on a first scrape) in Prometheus text format.
func WritePrometheus(w io.Writer, cur *Snapshot, d *Delta) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gaugeF := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gaugeI := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	gaugeF("ido_up", "1 while the process is serving.", 1)
	gaugeF("ido_uptime_seconds", "Seconds since the collector started.", float64(cur.UptimeNS)/1e9)

	// Device persist events — the paper's currency.
	counter("ido_fences_total", "Persist fences drained by the NVM device.", cur.Dev.Fences)
	counter("ido_flushes_total", "Cache-line write-backs (CLWB) issued.", cur.Dev.Flushes)
	counter("ido_nt_stores_total", "Non-temporal stores issued.", cur.Dev.NTStores)
	counter("ido_evictions_total", "Spontaneous cache evictions written back.", cur.Dev.Evictions)
	counter("ido_device_crashes_total", "Device crashes settled.", cur.Dev.Crashes)

	// Group-commit combiner.
	counter("ido_gc_epochs_total", "Merged group-commit fences completed.", cur.GC.Epochs)
	counter("ido_gc_solo_commits_total", "Commits taken on the combiner's solo fast path.", cur.GC.Solo)
	counter("ido_gc_combined_commits_total", "Commits absorbed into another thread's merged fence.", cur.GC.Combined)
	counter("ido_gc_served_fases_total", "FASE slots served across all merged fences.", cur.GC.ServedFASEs)
	counter("ido_gc_dwell_rounds_total", "Leader dwell yields while a batch window was open.", cur.GC.DwellRounds)

	// Front end.
	counter("ido_server_requests_total", "Requests completed by the server.", cur.Srv.Reqs)
	counter("ido_server_response_batches_total", "Response batches flushed to clients.", cur.Srv.Batches)
	counter("ido_server_bytes_in_total", "Bytes read from clients.", cur.Srv.BytesIn)
	counter("ido_server_bytes_out_total", "Bytes written to clients.", cur.Srv.BytesOut)
	counter("ido_server_protocol_errors_total", "Error replies sent for malformed or unsupported input.", cur.Srv.ProtoErrs)
	counter("ido_server_connections_total", "Connections ever accepted.", cur.Srv.ConnsTotal)
	counter("ido_server_connections_rejected_total", "Connections refused by the MaxConns ingress gate.", cur.Srv.ConnsRejected)
	counter("ido_server_idle_closed_total", "Connections closed by the idle-timeout deadline.", cur.Srv.IdleClosed)
	counter("ido_server_crashes_total", "Injected device crashes observed while serving.", cur.Srv.Crashes)
	gaugeI("ido_server_connections_open", "Connections currently served.", cur.Srv.ConnsOpen)

	// Per-shard pipeline gauges.
	if len(cur.Srv.Shards) > 0 {
		fmt.Fprintf(w, "# HELP ido_shard_queue_depth Requests parked in the shard dispatch queue.\n# TYPE ido_shard_queue_depth gauge\n")
		for i := range cur.Srv.Shards {
			fmt.Fprintf(w, "ido_shard_queue_depth{shard=\"%d\"} %d\n", i, cur.Srv.Shards[i].QueueDepth)
		}
		fmt.Fprintf(w, "# HELP ido_shard_inflight Requests being executed by the shard thread.\n# TYPE ido_shard_inflight gauge\n")
		for i := range cur.Srv.Shards {
			fmt.Fprintf(w, "ido_shard_inflight{shard=\"%d\"} %d\n", i, cur.Srv.Shards[i].InFlight)
		}
		fmt.Fprintf(w, "# HELP ido_shard_requests_total Requests completed per shard.\n# TYPE ido_shard_requests_total counter\n")
		for i := range cur.Srv.Shards {
			fmt.Fprintf(w, "ido_shard_requests_total{shard=\"%d\"} %d\n", i, cur.Srv.Shards[i].Reqs)
		}
		var gets, sets, dels, incrs, hits, misses uint64
		var fgets, fretries, fparks, ffalls, touches, evicts uint64
		for i := range cur.Srv.Shards {
			sh := &cur.Srv.Shards[i]
			gets += sh.Gets
			sets += sh.Sets
			dels += sh.Dels
			incrs += sh.Incrs
			hits += sh.Hits
			misses += sh.Misses
			fgets += sh.FastGets
			fretries += sh.FastRetries
			fparks += sh.FastParks
			ffalls += sh.FastFallbacks
			touches += sh.Touches
			evicts += sh.Evictions
		}
		fmt.Fprintf(w, "# HELP ido_server_verb_total Requests completed by verb.\n# TYPE ido_server_verb_total counter\n")
		fmt.Fprintf(w, "ido_server_verb_total{verb=\"get\"} %d\nido_server_verb_total{verb=\"set\"} %d\nido_server_verb_total{verb=\"del\"} %d\nido_server_verb_total{verb=\"incr\"} %d\n", gets, sets, dels, incrs)
		counter("ido_server_get_hits_total", "Gets that found the key.", hits)
		counter("ido_server_get_misses_total", "Gets that did not find the key.", misses)

		// Read fast lane: lock-free gets served off reader goroutines, and
		// the seqlock conflicts/parks/fallbacks behind them.
		counter("ido_server_fast_gets_total", "Gets served on the lock-free fast lane.", fgets)
		counter("ido_server_fast_retries_total", "Seqlock validation conflicts retried on the fast lane.", fretries)
		counter("ido_server_fast_parks_total", "Fast-lane reads parked on an in-flight commit ticket.", fparks)
		counter("ido_server_fast_fallbacks_total", "Fast-lane reads that fell back to the shard slot path.", ffalls)
		counter("ido_server_touch_fases_total", "Sampled LRU-touch FASEs drained by shard pipelines.", touches)
		counter("ido_server_evictions_total", "Watermark evictions performed by shard pipelines.", evicts)
	}

	// Hot-standby replication: role/lag gauges and stream counters.
	gaugeI("ido_repl_role", "Replication role: 0 none, 1 primary, 2 standby.", cur.Repl.Role)
	gaugeI("ido_repl_attached", "1 while the replication stream is live.", cur.Repl.Attached)
	counter("ido_repl_records_total", "Replication records shipped (primary) or applied (standby).", cur.Repl.Records)
	counter("ido_repl_bytes_total", "Replication stream bytes shipped or received.", cur.Repl.Bytes)
	counter("ido_repl_acked_records_total", "Records durably applied on the standby.", cur.Repl.AckedRecs)
	counter("ido_repl_degraded_total", "Client completions released without standby coverage.", cur.Repl.Degraded)
	counter("ido_repl_reconnects_total", "Replication stream (re)attaches.", cur.Repl.Reconnects)
	counter("ido_repl_failovers_total", "Standby promotions to primary.", cur.Repl.Failovers)
	gaugeI("ido_repl_lag_records", "Records published but not yet durably applied on the standby.", int64(cur.Repl.LagRecs))
	gaugeI("ido_repl_lag_bytes", "Replication lag in stream bytes.", int64(cur.Repl.LagBytes))
	gaugeI("ido_repl_lag_ns", "Age of the oldest completion still waiting on a receipt ack.", cur.Repl.LagNS)

	// Tracer event counts and ring accounting.
	fmt.Fprintf(w, "# HELP ido_events_total Exact traced event counts by kind.\n# TYPE ido_events_total counter\n")
	for k := 0; k < obs.NumKinds; k++ {
		if n := cur.Obs.Counts[k]; n > 0 {
			fmt.Fprintf(w, "ido_events_total{kind=%q} %d\n", obs.Kind(k).String(), n)
		}
	}
	counter("ido_events_dropped_total", "Events lost to full rings (counts stay exact).", cur.Obs.Dropped)
	counter("ido_events_sampled_out_total", "Events thinned from rings by sampling (counts stay exact).", cur.Obs.SampledOut)

	// Histograms.
	for _, he := range histExport {
		writePromHist(w, he.name, he.help, &cur.Obs.Hists[he.h])
	}

	// Interval gauges from the last scrape window.
	if d != nil {
		gaugeF("ido_requests_per_second", "Request rate over the last scrape interval.", d.OpsPerSec)
		gaugeF("ido_fences_per_op", "Device fences per request over the last scrape interval.", d.FencesPerOp)
		gaugeF("ido_flushes_per_op", "Cache-line write-backs per request over the last scrape interval.", d.FlushesPerOp)
		gaugeF("ido_gc_batch_occupancy", "FASEs per merged fence over the last scrape interval.", d.BatchOccupancy)
		fmt.Fprintf(w, "# HELP ido_req_latency_interval_ns Request latency quantiles over the last scrape interval.\n# TYPE ido_req_latency_interval_ns gauge\n")
		fmt.Fprintf(w, "ido_req_latency_interval_ns{quantile=\"0.5\"} %d\n", d.ReqP50NS)
		fmt.Fprintf(w, "ido_req_latency_interval_ns{quantile=\"0.99\"} %d\n", d.ReqP99NS)
		fmt.Fprintf(w, "ido_req_latency_interval_ns{quantile=\"0.999\"} %d\n", d.ReqP999NS)
	}
}

// writePromHist renders one log2 histogram as a Prometheus histogram.
// Empty buckets are elided (le is still cumulative, so PromQL's
// histogram_quantile interpolates correctly); +Inf always appears.
func writePromHist(w io.Writer, name, help string, h *obs.HistCounts) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if c == 0 || i >= 64 { // bucket 64 folds into +Inf below
			continue
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, bucketLE(i), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, cum)
}

// bucketLE is the upper bound of log2 bucket i as a Prometheus le value.
func bucketLE(i int) string {
	if i == 0 {
		return "0"
	}
	if i >= 64 {
		return "+Inf"
	}
	return strconv.FormatUint(1<<uint(i)-1, 10)
}
