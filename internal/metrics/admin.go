package metrics

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// The admin plane: a plain net/http mux over the snapshot layer. It
// runs on its own listener (idoserve -admin), fully isolated from the
// serving data path — a scrape or a trace capture never touches a
// connection goroutine or a shard pipeline beyond the atomic loads the
// snapshot performs.

// Health is the process's readiness state machine. Liveness (/healthz)
// is implicit — the process answers — while readiness (/readyz) tracks
// the store lifecycle: not ready while shards attach and recovery
// replays, ready once serving, not ready again after a device crash
// wedges the server. Zero value: not ready, "starting".
type Health struct {
	mu     sync.Mutex
	ready  bool
	reason string
}

// NewHealth returns a not-ready Health with the given reason.
func NewHealth(reason string) *Health {
	return &Health{reason: reason}
}

// Set transitions readiness, recording why.
func (h *Health) Set(ready bool, reason string) {
	h.mu.Lock()
	h.ready, h.reason = ready, reason
	h.mu.Unlock()
}

// Ready reports the current state and its reason.
func (h *Health) Ready() (bool, string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.reason == "" && !h.ready {
		return false, "starting"
	}
	return h.ready, h.reason
}

// NotReadyOn flips h not-ready with the given reason when ch closes —
// the hook that ties /readyz to the server's Crashed channel.
func (h *Health) NotReadyOn(ch <-chan struct{}, reason string) {
	go func() {
		<-ch
		h.Set(false, reason)
	}()
}

// Admin serves the introspection endpoints. It keeps the previous
// scrape's snapshot so /metrics can publish interval gauges (req/s,
// fences/op, latency quantiles) without any background goroutine.
type Admin struct {
	C *Collector
	H *Health

	mu   sync.Mutex
	prev *Snapshot
}

// NewAdmin builds the admin plane over a collector and health state.
func NewAdmin(c *Collector, h *Health) *Admin {
	return &Admin{C: c, H: h}
}

// Handler returns the admin mux:
//
//	/metrics        Prometheus text (cumulative counters + interval gauges)
//	/healthz        liveness: always 200 while the process runs
//	/readyz         readiness: 200 serving / 503 with the reason
//	/debug/snapshot the full Snapshot as JSON
//	/debug/trace    windowed Chrome trace capture (?ms=N, default 200)
func (a *Admin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.metrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", a.readyz)
	mux.HandleFunc("/debug/snapshot", a.snapshot)
	mux.HandleFunc("/debug/trace", a.trace)
	return mux
}

func (a *Admin) metrics(w http.ResponseWriter, _ *http.Request) {
	cur := a.C.Snapshot()
	var d *Delta
	a.mu.Lock()
	if a.prev != nil {
		d = new(Delta)
		Diff(a.prev, cur, d)
	}
	a.prev = cur
	a.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, cur, d)
}

func (a *Admin) readyz(w http.ResponseWriter, _ *http.Request) {
	ready, reason := a.H.Ready()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "not ready: %s\n", reason)
		return
	}
	fmt.Fprintf(w, "ready: %s\n", reason)
}

func (a *Admin) snapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(a.C.Snapshot())
}

// trace captures a live window: rotate the rings to discard the stale
// backlog, let the window elapse, rotate again and export exactly the
// window's events as Chrome trace JSON. Bounded to 5s so a stray query
// cannot pin the handler.
func (a *Admin) trace(w http.ResponseWriter, r *http.Request) {
	tr := a.C.Tracer
	if tr == nil {
		http.Error(w, "tracing is not enabled on this process", http.StatusServiceUnavailable)
		return
	}
	ms := 200
	if q := r.URL.Query().Get("ms"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			http.Error(w, "ms must be a positive integer", http.StatusBadRequest)
			return
		}
		ms = v
	}
	if ms > 5000 {
		ms = 5000
	}
	tr.Rotate() // discard everything before the window
	time.Sleep(time.Duration(ms) * time.Millisecond)
	events := tr.Rotate()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", "attachment; filename=\"ido-trace.json\"")
	tr.WriteChromeTraceEvents(w, events)
}
