package metrics_test

import (
	"testing"

	"github.com/ido-nvm/ido/internal/metrics"
	"github.com/ido-nvm/ido/internal/obs"
)

// The snapshot plane's own cost: a scrape must not allocate once its
// Snapshot is warm (the shard slice is reused), and a Diff never
// allocates. CI gates on these benchmarks' allocs/op.

// fakeSrc stands in for a 16-shard server.
type fakeSrc struct{}

func (fakeSrc) MetricsSnapshot(dst *metrics.ServerStats) {
	dst.ConnsOpen, dst.ConnsTotal = 8, 64
	dst.Reqs, dst.Batches = 1_000_000, 250_000
	dst.BytesIn, dst.BytesOut = 32<<20, 48<<20
	if cap(dst.Shards) < 16 {
		dst.Shards = make([]metrics.ShardStats, 16)
	}
	dst.Shards = dst.Shards[:16]
	for i := range dst.Shards {
		sh := &dst.Shards[i]
		sh.QueueDepth, sh.InFlight = int64(i%4), int64(i%2)
		sh.Reqs = 62_500
		sh.Gets, sh.Sets, sh.Dels = 25_000, 25_000, 12_500
		sh.Hits, sh.Misses = 20_000, 5_000
	}
}

// warmCollector builds a collector over a tracer with events in every
// layer, plus the fake 16-shard source.
func warmCollector() *metrics.Collector {
	tr := obs.New(obs.DefaultConfig())
	r := tr.ThreadRing("bench")
	for i := 0; i < 1000; i++ {
		r.Emit(obs.KFASE, uint64(i), 0)
		r.Observe(obs.HReqLatency, uint64(i)*100)
	}
	c := metrics.NewCollector(tr, nil)
	c.Src = fakeSrc{}
	return c
}

func BenchmarkCollectorRead(b *testing.B) {
	c := warmCollector()
	var s metrics.Snapshot
	c.Read(&s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(&s)
	}
}

func BenchmarkDiff(b *testing.B) {
	c := warmCollector()
	var prev, cur metrics.Snapshot
	var d metrics.Delta
	c.Read(&prev)
	c.Read(&cur)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Diff(&prev, &cur, &d)
	}
}

// TestSnapshotZeroAlloc is the local form of the CI allocation gate.
func TestSnapshotZeroAlloc(t *testing.T) {
	c := warmCollector()
	var prev, cur metrics.Snapshot
	var d metrics.Delta
	c.Read(&prev)
	if n := testing.AllocsPerRun(100, func() { c.Read(&cur) }); n != 0 {
		t.Errorf("Collector.Read allocates %v per op with a warm snapshot", n)
	}
	if n := testing.AllocsPerRun(100, func() { metrics.Diff(&prev, &cur, &d) }); n != 0 {
		t.Errorf("Diff allocates %v per op", n)
	}
}
