package metrics_test

import (
	"encoding/json"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/kv/memcache"
	"github.com/ido-nvm/ido/internal/loadgen"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/metrics"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
	"github.com/ido-nvm/ido/internal/server"
)

// End-to-end tests of the admin plane over a real serving stack: the
// acceptance reconciliation (/metrics values == device counters == exact
// tracer counts), the /readyz lifecycle across an injected crash and
// recovery, and the debug endpoints' output formats.

// adminWorld is the idoserve wiring in miniature: traced device, runtime,
// memcache store, server as metrics source, admin handler on top.
type adminWorld struct {
	tr    *obs.Tracer
	reg   *region.Region
	srv   *server.Server
	coll  *metrics.Collector
	h     *metrics.Health
	admin *httptest.Server
}

func newAdminWorld(t testing.TB, devcfg nvm.Config) *adminWorld {
	t.Helper()
	w := &adminWorld{tr: obs.New(obs.DefaultConfig())}
	devcfg.Tracer = w.tr
	if devcfg.Size == 0 {
		devcfg.Size = 1 << 22
	}
	w.reg = region.Create(devcfg.Size, devcfg)
	lm := locks.NewManager(w.reg)
	rt := core.New(core.DefaultConfig())
	if err := rt.Attach(w.reg, lm); err != nil {
		t.Fatalf("attach: %v", err)
	}
	store, err := server.NewMcStore(&memcache.Env{Reg: w.reg, LM: lm}, 4, 64)
	if err != nil {
		t.Fatalf("new store: %v", err)
	}
	w.coll = metrics.NewCollector(w.tr, w.reg.Dev)
	w.h = metrics.NewHealth("attaching store")
	w.srv, err = server.New(rt, store, server.Config{Proto: server.ProtoMemcache, Metrics: w.coll}, w.tr)
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	w.h.Set(true, "serving")
	w.h.NotReadyOn(w.srv.Crashed(), "device crash: restart for recovery")
	w.admin = httptest.NewServer(metrics.NewAdmin(w.coll, w.h).Handler())
	t.Cleanup(func() { w.admin.Close(); w.srv.Close() })
	return w
}

// load drives n deterministic ops through the server.
func (w *adminWorld) load(t testing.TB, n int) *loadgen.Result {
	t.Helper()
	res, err := loadgen.Run(loadgen.Config{
		Proto: loadgen.ProtoMemcache, Conns: 4, Pipeline: 4, Keys: 256,
		SetPct: 40, DelPct: 20, Ops: uint64(n), Seed: 5,
	}, func() (net.Conn, error) {
		client, srvEnd := loadgen.MemPipe(64 << 10)
		if serr := w.srv.ServeConn(srvEnd); serr != nil {
			return nil, serr
		}
		return client, nil
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	return res
}

func get(t testing.TB, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// promValue extracts the value of an exactly-named series from a
// Prometheus text body.
func promValue(t testing.TB, body, series string) uint64 {
	t.Helper()
	for _, ln := range strings.Split(body, "\n") {
		val, ok := strings.CutPrefix(ln, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			t.Fatalf("series %s has non-integer value %q", series, val)
		}
		return v
	}
	t.Fatalf("series %s not found in scrape:\n%s", series, body)
	return 0
}

func TestMetricsReconcile(t *testing.T) {
	w := newAdminWorld(t, nvm.Config{
		GroupCommit: nvm.GroupCommitConfig{Enabled: true, WindowNS: 2000},
	})
	res := w.load(t, 400)
	if res.Ops == 0 {
		t.Fatalf("no ops served")
	}

	status, body := get(t, w.admin.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}

	// The acceptance reconciliation: the scraped fence counter, the
	// device's own stats, and the tracer's exact event count must agree.
	fences := promValue(t, body, "ido_fences_total")
	if dev := w.reg.Dev.Stats().Fences; fences != dev {
		t.Errorf("scraped ido_fences_total %d != device fences %d", fences, dev)
	}
	if traced := w.tr.Count(obs.KFence); fences != traced {
		t.Errorf("scraped ido_fences_total %d != traced fences %d", fences, traced)
	}
	if fences == 0 {
		t.Errorf("ido_fences_total = 0 after %d ops", res.Ops)
	}

	// Request accounting matches the load the client acked, and the
	// per-shard rows sum to the server total.
	reqs := promValue(t, body, "ido_server_requests_total")
	if reqs < uint64(res.Ops) {
		t.Errorf("ido_server_requests_total %d < acked ops %d", reqs, res.Ops)
	}
	var shardReqs uint64
	for i := 0; i < 4; i++ {
		shardReqs += promValue(t, body, `ido_shard_requests_total{shard="`+strconv.Itoa(i)+`"}`)
		promValue(t, body, `ido_shard_queue_depth{shard="`+strconv.Itoa(i)+`"}`)
	}
	if shardReqs != uint64(res.Ops) {
		t.Errorf("shard requests sum %d != acked ops %d", shardReqs, res.Ops)
	}
	hits := promValue(t, body, "ido_server_get_hits_total")
	misses := promValue(t, body, "ido_server_get_misses_total")
	if hits != res.Hits || misses != res.Misses {
		t.Errorf("hits/misses %d/%d != client-observed %d/%d", hits, misses, res.Hits, res.Misses)
	}

	// Group commit was enabled: merged fences show up.
	if promValue(t, body, "ido_gc_epochs_total") == 0 && promValue(t, body, "ido_gc_solo_commits_total") == 0 {
		t.Errorf("group commit enabled but no combiner activity scraped")
	}

	// Latency histogram framing: one +Inf bucket, count == sum of events.
	if n := strings.Count(body, `ido_req_latency_ns_bucket{le="+Inf"}`); n != 1 {
		t.Errorf("want exactly one +Inf bucket for ido_req_latency_ns, got %d", n)
	}
	if promValue(t, body, "ido_req_latency_ns_count") == 0 {
		t.Errorf("ido_req_latency_ns_count = 0 after load")
	}

	// First scrape has no interval gauges; a second scrape does.
	if strings.Contains(body, "ido_requests_per_second") {
		t.Errorf("first scrape already has interval gauges")
	}
	w.load(t, 100)
	_, body2 := get(t, w.admin.URL+"/metrics")
	for _, g := range []string{"ido_requests_per_second", "ido_fences_per_op",
		`ido_req_latency_interval_ns{quantile="0.99"}`} {
		if !strings.Contains(body2, g) {
			t.Errorf("second scrape missing interval gauge %s", g)
		}
	}
}

func TestHealthTransitionsAcrossCrash(t *testing.T) {
	nvm.ArmCrash(1 << 60)
	defer nvm.ArmCrash(-1)

	// Before the store is ready, /readyz refuses with the boot reason.
	h := metrics.NewHealth("attaching store")
	coll := metrics.NewCollector(nil, nil)
	pre := httptest.NewServer(metrics.NewAdmin(coll, h).Handler())
	if st, body := get(t, pre.URL+"/readyz"); st != http.StatusServiceUnavailable ||
		!strings.Contains(body, "attaching store") {
		t.Fatalf("pre-ready /readyz = %d %q", st, body)
	}
	if st, body := get(t, pre.URL+"/healthz"); st != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", st, body)
	}
	pre.Close()

	w := newAdminWorld(t, nvm.Config{
		GroupCommit: nvm.GroupCommitConfig{Enabled: true, WindowNS: 2000},
	})
	if st, body := get(t, w.admin.URL+"/readyz"); st != http.StatusOK || !strings.Contains(body, "serving") {
		t.Fatalf("serving /readyz = %d %q", st, body)
	}

	// Crash mid-serve: readiness must flip once the server observes it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		loadgen.Run(loadgen.Config{
			Proto: loadgen.ProtoMemcache, Conns: 4, Pipeline: 4, Keys: 256,
			SetPct: 40, DelPct: 20, Duration: 30 * time.Second, Seed: 9,
		}, func() (net.Conn, error) {
			client, srvEnd := loadgen.MemPipe(64 << 10)
			if serr := w.srv.ServeConn(srvEnd); serr != nil {
				return nil, serr
			}
			return client, nil
		})
	}()
	time.Sleep(50 * time.Millisecond)
	nvm.TriggerCrash()
	select {
	case <-w.srv.Crashed():
	case <-time.After(30 * time.Second):
		t.Fatalf("server did not observe the crash")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, body := get(t, w.admin.URL+"/readyz")
		if st == http.StatusServiceUnavailable && strings.Contains(body, "device crash") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz still %d %q after crash", st, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	w.srv.Close()
	<-done

	// The crash is visible in the scrape too.
	_, body := get(t, w.admin.URL+"/metrics")
	if promValue(t, body, "ido_server_crashes_total") != 1 {
		t.Errorf("ido_server_crashes_total != 1 after crash")
	}

	// Restarted process: recover the image and flip ready again, the
	// idoserve boot sequence.
	nvm.ArmCrash(-1)
	reg2, err := w.reg.Crash(nvm.CrashRandom, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("reattach: %v", err)
	}
	h2 := metrics.NewHealth("recovering")
	admin2 := httptest.NewServer(metrics.NewAdmin(metrics.NewCollector(nil, reg2.Dev), h2).Handler())
	defer admin2.Close()
	if st, _ := get(t, admin2.URL+"/readyz"); st != http.StatusServiceUnavailable {
		t.Fatalf("recovering /readyz = %d", st)
	}
	lm2 := locks.NewManager(reg2)
	rt2 := core.New(core.DefaultConfig())
	if err := rt2.Attach(reg2, lm2); err != nil {
		t.Fatalf("attach2: %v", err)
	}
	store2, err := server.AttachMcStore(&memcache.Env{Reg: reg2, LM: lm2})
	if err != nil {
		t.Fatalf("attach store: %v", err)
	}
	rr := persist.NewResumeRegistry()
	store2.Register(rr)
	if _, err := rt2.Recover(rr); err != nil {
		t.Fatalf("recover: %v", err)
	}
	srv2, err := server.New(rt2, store2, server.Config{Proto: server.ProtoMemcache}, nil)
	if err != nil {
		t.Fatalf("re-serve: %v", err)
	}
	defer srv2.Close()
	h2.Set(true, "serving")
	if st, body := get(t, admin2.URL+"/readyz"); st != http.StatusOK || !strings.Contains(body, "serving") {
		t.Fatalf("post-recovery /readyz = %d %q", st, body)
	}
}

func TestDebugEndpoints(t *testing.T) {
	w := newAdminWorld(t, nvm.Config{})
	w.load(t, 200)

	// /debug/snapshot is the full Snapshot as JSON.
	st, body := get(t, w.admin.URL+"/debug/snapshot")
	if st != http.StatusOK {
		t.Fatalf("/debug/snapshot status %d", st)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/snapshot not a Snapshot: %v", err)
	}
	if snap.Dev.Fences == 0 || snap.Srv.Reqs == 0 || len(snap.Srv.Shards) != 4 {
		t.Fatalf("snapshot missing data: fences=%d reqs=%d shards=%d",
			snap.Dev.Fences, snap.Srv.Reqs, len(snap.Srv.Shards))
	}

	// /debug/trace captures a live window as valid Chrome trace JSON.
	stop := make(chan struct{})
	go func() {
		r := w.tr.ThreadRing("emitter")
		for {
			select {
			case <-stop:
				return
			default:
				r.Emit(obs.KFASE, 1, 0)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	st, body = get(t, w.admin.URL+"/debug/trace?ms=80")
	close(stop)
	if st != http.StatusOK {
		t.Fatalf("/debug/trace status %d", st)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("/debug/trace not valid Chrome JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatalf("/debug/trace captured no events while an emitter ran")
	}

	// Bad window and tracer-less process are refused.
	if st, _ := get(t, w.admin.URL+"/debug/trace?ms=nope"); st != http.StatusBadRequest {
		t.Errorf("bad ms: status %d", st)
	}
	bare := httptest.NewServer(metrics.NewAdmin(metrics.NewCollector(nil, nil), w.h).Handler())
	defer bare.Close()
	if st, _ := get(t, bare.URL+"/debug/trace"); st != http.StatusServiceUnavailable {
		t.Errorf("tracer-less /debug/trace: status %d", st)
	}
}
