// Package metrics is the introspection plane over the serving stack: a
// lock-free snapshot/delta layer that turns the cumulative counters the
// hot paths already maintain — obs.Tracer event counts and histograms,
// nvm.Device persist-event stats, group-commit combiner gauges, and the
// server's per-shard pipeline gauges — into one coherent Snapshot that
// renders as Prometheus text, memcache `stats`, RESP `INFO`, or JSON,
// and diffs into interval rates (req/s, fences/op, batch occupancy,
// latency quantiles).
//
// The design constraint is the same one the tracer lives under: the
// serve path stays 0 allocs/op. Producers never do metrics work beyond
// the atomic counters they already bump; a Collector.Read is a bounded
// pass of atomic loads into a caller-owned Snapshot, itself 0 allocs
// once the snapshot's shard slice has been sized. Everything textual
// (Prometheus rendering, stats/INFO bodies) happens on the reading
// side, off the hot path.
package metrics

import (
	"time"

	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/obs"
)

// ShardStats is one shard pipeline's gauges and counters.
type ShardStats struct {
	QueueDepth int64  // requests parked in the shard's dispatch queue now
	InFlight   int64  // requests being executed by the shard thread now (0 or 1)
	Reqs       uint64 // requests the shard has completed
	Gets       uint64
	Sets       uint64
	Dels       uint64
	Incrs      uint64 // incr + decr read-modify-writes
	Hits       uint64 // gets that found the key
	Misses     uint64 // gets that did not

	// Read fast-lane counters: gets served lock-free off the reader
	// goroutine, seqlock conflicts retried, parks on in-flight commit
	// tickets, and bounded-retry falls back to the slot path.
	FastGets      uint64
	FastRetries   uint64
	FastParks     uint64
	FastFallbacks uint64
	Touches       uint64 // sampled LRU-touch FASEs drained by the pipeline
	Evictions     uint64 // watermark evictions performed by the pipeline
}

// ServerStats is the front end's counter/gauge block, filled by the
// server through the Source interface so this package never imports it.
type ServerStats struct {
	ConnsOpen     int64  // connections currently served
	ConnsTotal    uint64 // connections ever accepted
	Reqs          uint64 // requests completed (all shards)
	Batches       uint64 // response batches flushed to clients
	BytesIn       uint64 // bytes read from clients
	BytesOut      uint64 // bytes written to clients
	ProtoErrs     uint64 // error replies sent (malformed/unsupported input)
	ConnsRejected uint64 // connections refused by the MaxConns ingress gate
	IdleClosed    uint64 // connections closed by the idle-timeout deadline
	Crashes       uint64 // injected device crashes observed while serving
	Shards        []ShardStats
}

// Source is anything that can fill a ServerStats in place. Implemented
// by *server.Server; dst.Shards must be reused when its capacity
// suffices so steady-state reads stay allocation-free.
type Source interface {
	MetricsSnapshot(dst *ServerStats)
}

// Replication roles for ReplStats.Role.
const (
	ReplRoleNone    = 0
	ReplRolePrimary = 1
	ReplRoleStandby = 2
)

// ReplStats is the hot-standby replication block, filled by a
// replica.Shipper (primary) or replica.Standby through the ReplSource
// interface. Lag fields are instantaneous gauges; the rest are
// cumulative.
type ReplStats struct {
	Role       int64  // ReplRoleNone / ReplRolePrimary / ReplRoleStandby
	Attached   int64  // 1 while the replication stream is live
	Records    uint64 // records shipped (primary) or applied (standby)
	Bytes      uint64 // stream bytes shipped (primary) or received (standby)
	AckedRecs  uint64 // records the standby has durably applied
	Degraded   uint64 // completions without standby coverage (primary) / replay dups skipped (standby)
	LagRecs    uint64 // records published but not yet durably applied
	LagBytes   uint64 // the same lag in stream bytes
	LagNS      int64  // age of the oldest completion still waiting on a receipt ack
	Reconnects uint64 // stream (re)attaches
	Failovers  uint64 // standby promotions
}

// ReplSource is anything that can fill a ReplStats in place.
type ReplSource interface {
	ReplSnapshot(dst *ReplStats)
}

// Snapshot is one cumulative observation of the whole stack. Every
// field is monotonic (gauges excepted), so two Snapshots diff into
// interval rates; one Snapshot renders directly as cumulative counters.
type Snapshot struct {
	// MonoNS is nanoseconds on the tracer clock (or wall time since the
	// collector started when no tracer is attached) — the time base that
	// turns a diff into rates.
	MonoNS   int64
	UptimeNS int64

	Dev  nvm.Stats
	GC   nvm.GCStats
	Obs  obs.State
	Srv  ServerStats
	Repl ReplStats
}

// Collector reads the live stack into Snapshots. Any of the fields may
// be nil; absent layers read as zero. Safe for concurrent use — every
// Read is an independent pass of atomic loads.
type Collector struct {
	Tracer *obs.Tracer
	Dev    *nvm.Device
	Src    Source
	Repl   ReplSource
	Start  time.Time // collector birth; uptime base. Zero value = first Read.
}

// NewCollector builds a collector over a tracer and device (either may
// be nil). Attach the serving front end via the Src field.
func NewCollector(tr *obs.Tracer, dev *nvm.Device) *Collector {
	return &Collector{Tracer: tr, Dev: dev, Start: time.Now()}
}

// Read fills s with a cumulative snapshot of every attached layer.
// 0 allocs/op once s's shard slice has been sized (first call per
// Snapshot); the CI gate holds this alongside the serve-path gate.
func (c *Collector) Read(s *Snapshot) {
	if c.Start.IsZero() {
		c.Start = time.Now()
	}
	s.UptimeNS = int64(time.Since(c.Start))
	if c.Tracer != nil {
		s.MonoNS = c.Tracer.Clock()
	} else {
		s.MonoNS = s.UptimeNS
	}
	c.Tracer.ReadState(&s.Obs)
	if c.Dev != nil {
		s.Dev = c.Dev.Stats()
		s.GC = c.Dev.GroupCommitStats()
	} else {
		s.Dev = nvm.Stats{}
		s.GC = nvm.GCStats{}
	}
	if c.Src != nil {
		c.Src.MetricsSnapshot(&s.Srv)
	} else {
		s.Srv = ServerStats{Shards: s.Srv.Shards[:0]}
	}
	if c.Repl != nil {
		c.Repl.ReplSnapshot(&s.Repl)
	} else {
		s.Repl = ReplStats{}
	}
}

// Snapshot allocates and fills a fresh Snapshot — the convenience form
// for admin handlers, which are off the hot path.
func (c *Collector) Snapshot() *Snapshot {
	s := new(Snapshot)
	c.Read(s)
	return s
}

// Delta holds the interval rates between two Snapshots — the live
// answers to the paper's §V questions (persist events per operation)
// plus the serving SLOs.
type Delta struct {
	WindowNS int64

	Reqs      uint64  // requests completed in the window
	OpsPerSec float64 // request rate over the window
	Errs      uint64  // protocol errors in the window

	FencesPerOp  float64 // device fences per request
	FlushesPerOp float64 // device write-backs per request
	NTPerOp      float64 // non-temporal stores per request

	// BatchOccupancy is FASEs per merged group-commit fence over the
	// window (from HFASEsPerFence) — 0 when no merged fence completed,
	// 1 when the combiner never amortized anything.
	BatchOccupancy float64

	// Request latency quantiles over the window, from the HReqLatency
	// log2 buckets (bucket upper bounds, so within 2x).
	ReqP50NS  uint64
	ReqP99NS  uint64
	ReqP999NS uint64
}

// Diff computes interval rates cur - prev into d. Both snapshots should
// come from the same Collector; a stale pair clamps at zero rather than
// underflowing. The op basis is server requests when the front end is
// attached, committed FASEs otherwise (so `idobench`-style worlds diff
// meaningfully too).
func Diff(prev, cur *Snapshot, d *Delta) {
	*d = Delta{WindowNS: cur.MonoNS - prev.MonoNS}
	if d.WindowNS <= 0 {
		d.WindowNS = 1
	}
	ops := sub(cur.Srv.Reqs, prev.Srv.Reqs)
	if cur.Srv.Reqs == 0 { // no front end attached: fall back to FASE commits
		ops = sub(cur.Obs.Counts[obs.KFASE], prev.Obs.Counts[obs.KFASE])
	}
	d.Reqs = ops
	d.OpsPerSec = float64(ops) / (float64(d.WindowNS) / 1e9)
	d.Errs = sub(cur.Srv.ProtoErrs, prev.Srv.ProtoErrs)
	if ops > 0 {
		d.FencesPerOp = float64(sub(cur.Dev.Fences, prev.Dev.Fences)) / float64(ops)
		d.FlushesPerOp = float64(sub(cur.Dev.Flushes, prev.Dev.Flushes)) / float64(ops)
		d.NTPerOp = float64(sub(cur.Dev.NTStores, prev.Dev.NTStores)) / float64(ops)
	}
	occ := cur.Obs.Hists[obs.HFASEsPerFence].Sub(&prev.Obs.Hists[obs.HFASEsPerFence])
	d.BatchOccupancy = occ.Mean()
	lat := cur.Obs.Hists[obs.HReqLatency].Sub(&prev.Obs.Hists[obs.HReqLatency])
	d.ReqP50NS = lat.Quantile(0.50)
	d.ReqP99NS = lat.Quantile(0.99)
	d.ReqP999NS = lat.Quantile(0.999)
}

func sub(cur, prev uint64) uint64 {
	if cur > prev {
		return cur - prev
	}
	return 0
}
