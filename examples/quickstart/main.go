// Quickstart: a persistent counter and a persistent linked list through
// the public ido API, surviving a simulated power failure mid-FASE.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/ido-nvm/ido"
)

// Region IDs for our two FASEs (any unique non-zero values below 2^48).
const (
	ridCounterBody  = 0x9001 // after the lock: read the counter
	ridCounterStore = 0x9002 // antidep cut: write the counter back
	ridListLink     = 0x9101 // after the lock: build the node
	ridListPublish  = 0x9102 // antidep cut: publish the head
	ridRelease      = 0x9103 // before the unlock
)

// registerResumes installs the recovery entry points — the code the iDO
// compiler would emit for each region's recovery_pc.
func registerResumes(db *ido.DB) {
	// Counter: rf[0] = counter address, rf[1] = lock holder, rf[2] = the
	// value read before the crash.
	db.Registry.Register(ridCounterBody, func(t ido.Thread, rf []uint64) {
		counterBody(db, t, rf[0], rf[1])
	})
	db.Registry.Register(ridCounterStore, func(t ido.Thread, rf []uint64) {
		counterStore(db, t, rf[0], rf[1], rf[2])
	})
	// List: rf[0] = head address, rf[1] = lock holder, rf[2] = value,
	// rf[3] = node.
	db.Registry.Register(ridListLink, func(t ido.Thread, rf []uint64) {
		listLink(db, t, rf[0], rf[1], rf[2])
	})
	db.Registry.Register(ridListPublish, func(t ido.Thread, rf []uint64) {
		listPublish(db, t, rf[0], rf[1], rf[3])
	})
	db.Registry.Register(ridRelease, func(t ido.Thread, rf []uint64) {
		t.Unlock(db.LockAt(rf[1]))
	})
}

// incrementCounter is one FASE: lock, boundary, read-modify-write, unlock.
func incrementCounter(db *ido.DB, t ido.Thread, ctr, holder uint64) {
	t.Lock(db.LockAt(holder))
	t.Boundary(ridCounterBody, ido.RV(0, ctr), ido.RV(1, holder))
	counterBody(db, t, ctr, holder)
}

func counterBody(db *ido.DB, t ido.Thread, ctr, holder uint64) {
	v := t.Load64(ctr)
	// Read-then-overwrite is an antidependence: the store belongs to the
	// next region, with its input (v) logged in register slot 2.
	t.Boundary(ridCounterStore, ido.RV(2, v))
	counterStore(db, t, ctr, holder, v)
}

func counterStore(db *ido.DB, t ido.Thread, ctr, holder, v uint64) {
	t.Store64(ctr, v+1)
	t.Boundary(ridRelease)
	t.Unlock(db.LockAt(holder))
}

// listPush is one FASE inserting at the head of a persistent list.
// Node layout: [0]=value, [8]=next.
func listPush(db *ido.DB, t ido.Thread, head, holder, val uint64) {
	t.Lock(db.LockAt(holder))
	t.Boundary(ridListLink, ido.RV(0, head), ido.RV(1, holder), ido.RV(2, val))
	listLink(db, t, head, holder, val)
}

func listLink(db *ido.DB, t ido.Thread, head, holder, val uint64) {
	old := t.Load64(head)
	node, err := db.Alloc(16)
	if err != nil {
		log.Fatal(err)
	}
	t.Store64(node, val)
	t.Store64(node+8, old)
	t.Boundary(ridListPublish, ido.RV(3, node))
	listPublish(db, t, head, holder, node)
}

func listPublish(db *ido.DB, t ido.Thread, head, holder, node uint64) {
	t.Store64(head, node)
	t.Boundary(ridRelease)
	t.Unlock(db.LockAt(holder))
}

func main() {
	// 1. A fresh 16 MB persistent region.
	db, err := ido.Create(16<<20, ido.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	registerResumes(db)

	// 2. Lay out a counter and a list head, published via root slots.
	ctr, _ := db.Alloc(8)
	head, _ := db.Alloc(8)
	lock, _ := db.NewLock()
	db.SetRoot(1, ctr)
	db.SetRoot(2, head)
	db.SetRoot(3, lock.Holder())

	t, _ := db.NewThread()
	for i := 0; i < 10; i++ {
		incrementCounter(db, t, ctr, lock.Holder())
		listPush(db, t, head, lock.Holder(), uint64(100+i))
	}
	fmt.Printf("before crash: counter=%d\n", db.Region.Dev.Load64(ctr))

	// 3. Pull the plug mid-run: the adversary randomly persists or drops
	// every unflushed cache word.
	db2, err := db.Crash(ido.CrashRandom, rand.New(rand.NewSource(1)), ido.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	registerResumes(db2)
	st, err := db2.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d logs examined, %d FASEs resumed\n", st.Threads, st.Resumed)

	// 4. Everything the FASEs completed is durable.
	ctr2, head2 := db2.Root(1), db2.Root(2)
	fmt.Printf("after crash: counter=%d\n", db2.Region.Dev.Load64(ctr2))
	n := 0
	for cur := db2.Region.Dev.Load64(head2); cur != 0; cur = db2.Region.Dev.Load64(cur + 8) {
		n++
	}
	fmt.Printf("after crash: list has %d nodes\n", n)
}
