// crashdemo: watch recovery-via-resumption happen at the instruction
// level. The demo compiles the built-in ordered-list kernel with the iDO
// compiler, executes inserts in the VM, crashes at a chosen event, and
// shows the recovery_pc, the restored register file, and the resumed
// FASE completing.
//
// Run: go run ./examples/crashdemo
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/irprog"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/region"
	"github.com/ido-nvm/ido/internal/vm"
)

func main() {
	prog, err := irprog.Compile(compile.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Show what the compiler did to list_insert.
	cf := prog.Funcs["list_insert"]
	fmt.Println("== instrumented list_insert (boundary = idempotent-region cut) ==")
	fmt.Print(cf.F.String())
	fmt.Printf("// %d idempotent regions\n\n", len(cf.Regions))

	reg := region.Create(1<<22, nvm.Config{Size: 1 << 22})
	lm := locks.NewManager(reg)
	m := vm.New(reg, lm, prog, vm.ModeIDO)
	lst, err := irprog.NewList(reg, lm)
	if err != nil {
		log.Fatal(err)
	}
	th, err := m.NewThread()
	if err != nil {
		log.Fatal(err)
	}

	// A few complete inserts, then one that dies mid-FASE.
	for _, k := range []uint64{30, 10, 50} {
		if _, err := th.Call("list_insert", lst, k, k+1); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("inserted keys 10, 30, 50; now inserting 20 with a crash armed...")
	m.SetCrashBudget(35) // dies inside the insert FASE
	_, err = th.Call("list_insert", lst, 20, 21)
	fmt.Printf("call result: %v\n", err)
	m.SetCrashBudget(-1)

	// Power failure with the adversarial write-back model.
	reg.Dev.Crash(nvm.CrashRandom, rand.New(rand.NewSource(3)))
	reg2, err := region.Attach(reg.Dev)
	if err != nil {
		log.Fatal(err)
	}
	m2 := vm.New(reg2, locks.NewManager(reg2), prog, vm.ModeIDO)
	st, err := m2.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d FASE(s) resumed from their interrupted region\n", st.Resumed)

	// Walk the recovered list: sorted, containing every completed insert
	// (and the resumed one).
	fmt.Print("recovered list:")
	dev := reg2.Dev
	for cur := dev.Load64(lst + 16); cur != 0; cur = dev.Load64(cur + 16) {
		fmt.Printf(" %d->%d", dev.Load64(cur), dev.Load64(cur+8))
	}
	fmt.Println()
}
