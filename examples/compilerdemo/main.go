// compilerdemo: a walkthrough of the three iDO compiler phases (Fig. 4)
// on a small function — FASE inference, idempotent-region formation, and
// input-preservation/output-persistence instrumentation.
//
// Run: go run ./examples/compilerdemo
package main

import (
	"fmt"
	"log"

	"github.com/ido-nvm/ido/internal/alias"
	"github.com/ido-nvm/ido/internal/compile"
	"github.com/ido-nvm/ido/internal/fase"
	"github.com/ido-nvm/ido/internal/idem"
	"github.com/ido-nvm/ido/internal/ir"
)

// A bank-transfer-shaped FASE: read two balances, write two balances.
// The read-then-overwrite of each account word is the antidependence the
// region formation must cut.
const src = `
func transfer 3 {          // r0 = accounts base, r1 = amount, r2 = lock holder
entry:
  lock r2
  a = load r0 0            // balance A
  b = load r0 8            // balance B
  na = sub a r1
  nb = add b r1
  store r0 0 na            // antidependence on [r0+0] -> region cut above
  store r0 8 nb
  unlock r2
  ret
}
`

func main() {
	f, err := ir.ParseFunc(src)
	if err != nil {
		log.Fatal(err)
	}
	if err := ir.Verify(f); err != nil {
		log.Fatal(err)
	}

	// Phase 1: FASE inference.
	fi, err := fase.Infer(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1 — FASE inference: %d mandatory boundary points (post-acquire, pre-release)\n",
		len(fi.MandatoryCuts))

	// Phase 2: idempotent region formation over basicAA-style aliasing.
	aa := alias.Analyze(f)
	res, err := idem.Form(f, aa, fi, idem.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2 — region formation: %d idempotent regions (cuts at %v)\n",
		res.NumRegions(), res.Cuts)
	if err := idem.Check(f, aa, fi, res); err != nil {
		log.Fatal(err)
	}
	fmt.Println("          idempotence check: no region overwrites its own memory inputs")

	// Phase 3: instrumentation with per-boundary log sets.
	cf, err := compile.Func(f, 0x7000, compile.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nphase 3 — instrumented function (boundary <id> <logged registers>):")
	fmt.Print(cf.F.String())
	fmt.Println("\nper-region log sets (OutputSet_prev ∩ LiveIn, Eq. 1; full live-in at FASE entry):")
	for _, r := range cf.Regions {
		names := make([]string, 0, len(r.Log))
		for _, reg := range r.Log {
			if n, ok := f.RegNames[reg]; ok {
				names = append(names, n)
			} else {
				names = append(names, fmt.Sprintf("r%d", int(reg)))
			}
		}
		fmt.Printf("  region %#x: logs %v\n", r.ID, names)
	}
}
