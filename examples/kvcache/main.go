// kvcache: the paper's Fig. 5 scenario as a runnable demo — a
// Memcached-like persistent cache under concurrent mixed traffic, killed
// by a power failure mid-burst, then recovered via resumption and
// verified.
//
// Run: go run ./examples/kvcache
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/kv/memcache"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

func main() {
	reg := region.Create(64<<20, nvm.Config{Size: 64 << 20})
	lm := locks.NewManager(reg)
	rt := core.New(core.DefaultConfig())
	if err := rt.Attach(reg, lm); err != nil {
		log.Fatal(err)
	}
	env := &memcache.Env{Reg: reg, LM: lm}
	cache, tbl, err := memcache.New(env, 1<<12)
	if err != nil {
		log.Fatal(err)
	}
	reg.SetRoot(1, tbl)

	// Concurrent workers set keys; a machine-wide crash is armed to fire
	// somewhere inside the burst.
	const workers, perWorker = 4, 300
	completed := make([][]uint64, workers)
	threads := make([]persist.Thread, workers)
	for i := range threads {
		t, err := rt.NewThread()
		if err != nil {
			log.Fatal(err)
		}
		threads[i] = t
	}
	rng := rand.New(rand.NewSource(7))
	nvm.ArmCrash(int64(20000 + rng.Intn(40000)))
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(nvm.CrashSignal); !ok {
						panic(r)
					}
				}
			}()
			t := threads[g]
			for i := 0; i < perWorker; i++ {
				k := uint64(g*10000 + i + 1)
				cache.Set(t, k, k^0xBEEF, k*3)
				completed[g] = append(completed[g], k)
			}
		}(g)
	}
	wg.Wait()
	nvm.ArmCrash(-1)
	total := 0
	for _, c := range completed {
		total += len(c)
	}
	fmt.Printf("power failed: %d sets had completed across %d workers\n", total, workers)

	// The crash: unflushed cache words are adversarially half-persisted.
	reg.Dev.Crash(nvm.CrashRandom, rng)

	// Process restart: reattach, register the cache's recovery code, and
	// run §III-C recovery.
	reg2, err := region.Attach(reg.Dev)
	if err != nil {
		log.Fatal(err)
	}
	lm2 := locks.NewManager(reg2)
	rt2 := core.New(core.DefaultConfig())
	if err := rt2.Attach(reg2, lm2); err != nil {
		log.Fatal(err)
	}
	env2 := &memcache.Env{Reg: reg2, LM: lm2}
	rr := persist.NewResumeRegistry()
	memcache.Register(rr, env2)
	st, err := rt2.Recover(rr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d thread logs, %d interrupted FASEs resumed in %s\n",
		st.Threads, st.Resumed, st.Elapsed)

	// Verify every completed set.
	cache2 := memcache.Attach(env2, reg2.Root(1))
	t, _ := rt2.NewThread()
	for g := 0; g < workers; g++ {
		for _, k := range completed[g] {
			v, ok := cache2.Get(t, k, k^0xBEEF)
			if !ok || v != k*3 {
				log.Fatalf("VERIFY FAILED: key %d = (%d,%v)", k, v, ok)
			}
		}
	}
	fmt.Printf("verified: all %d completed sets durable (cache holds %d items)\n",
		total, cache2.Count())
}
