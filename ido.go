// Package ido is the public face of this repository's reproduction of
// "iDO: Compiler-Directed Failure Atomicity for Nonvolatile Memory"
// (MICRO 2018). It wires together the simulated NVM device, the
// persistent-region manager, the indirect-lock manager, and the iDO
// runtime, exposing the workflow a downstream application uses:
//
//	db, _ := ido.Create(64 << 20)           // a fresh persistent region
//	t, _  := db.NewThread()                 // per-worker handle
//	t.Lock(l); t.Boundary(id, ido.RV(0, x)) // FASEs with region boundaries
//	...
//	db.SaveFile("heap.img")                 // survive process death
//	db2, _ := ido.OpenFile("heap.img")      // map it back
//	registerResumes(db2.Registry)           // the compiled recovery code
//	db2.Recover()                           // complete interrupted FASEs
//
// The compiler pipeline (internal/compile + internal/vm) provides the
// same mechanics for programs written in the repository's mini-IR; see
// cmd/idoc and cmd/idorecover.
package ido

import (
	"math/rand"

	"github.com/ido-nvm/ido/internal/core"
	"github.com/ido-nvm/ido/internal/locks"
	"github.com/ido-nvm/ido/internal/nvm"
	"github.com/ido-nvm/ido/internal/persist"
	"github.com/ido-nvm/ido/internal/region"
)

// Re-exported building blocks.
type (
	// Thread is a worker's handle on the failure-atomicity runtime.
	Thread = persist.Thread
	// RegVal is one logged register (fixed slot + value).
	RegVal = persist.RegVal
	// ResumeRegistry maps region IDs to recovery entry points.
	ResumeRegistry = persist.ResumeRegistry
	// RecoveryStats describes a recovery pass.
	RecoveryStats = persist.RecoveryStats
	// Lock is a transient mutex with a persistent indirect holder.
	Lock = locks.Lock
	// CrashMode selects the crash adversary for Crash.
	CrashMode = nvm.CrashMode
)

// RV builds a RegVal.
func RV(reg int, val uint64) RegVal { return persist.RV(reg, val) }

// Crash adversaries (see the nvm package for semantics).
const (
	CrashDiscard    = nvm.CrashDiscard
	CrashRandom     = nvm.CrashRandom
	CrashPersistAll = nvm.CrashPersistAll
)

// Config tunes a DB.
type Config struct {
	// Coalesce enables persist coalescing (§IV-B). On by default.
	Coalesce bool
	// FlushNS / FenceNS / NTStoreNS / ExtraNS parameterize the simulated
	// NVM cost model; zero values are free (logical-behavior mode).
	FlushNS, FenceNS, NTStoreNS, ExtraNS int
}

// DefaultConfig enables coalescing with a cost-free device.
func DefaultConfig() Config { return Config{Coalesce: true} }

// DB is an open persistent region with an attached iDO runtime.
type DB struct {
	Region   *region.Region
	Locks    *locks.Manager
	Runtime  *core.Runtime
	Registry *ResumeRegistry
}

func attach(reg *region.Region, cfg Config) (*DB, error) {
	lm := locks.NewManager(reg)
	rt := core.New(core.Config{Coalesce: cfg.Coalesce})
	if err := rt.Attach(reg, lm); err != nil {
		return nil, err
	}
	return &DB{Region: reg, Locks: lm, Runtime: rt, Registry: persist.NewResumeRegistry()}, nil
}

// Create formats a fresh persistent region of size bytes.
func Create(size int, cfg Config) (*DB, error) {
	reg := region.Create(size, nvm.Config{
		Size: size, FlushNS: cfg.FlushNS, FenceNS: cfg.FenceNS,
		NTStoreNS: cfg.NTStoreNS, ExtraNS: cfg.ExtraNS,
	})
	return attach(reg, cfg)
}

// OpenFile maps a region image saved by SaveFile — the post-crash path.
// Register resume entries on db.Registry, then call Recover.
func OpenFile(path string, cfg Config) (*DB, error) {
	reg, err := region.OpenFile(path, nvm.Config{
		FlushNS: cfg.FlushNS, FenceNS: cfg.FenceNS,
		NTStoreNS: cfg.NTStoreNS, ExtraNS: cfg.ExtraNS,
	})
	if err != nil {
		return nil, err
	}
	return attach(reg, cfg)
}

// SaveFile persists the region's durable bytes to path (what would
// survive an immediate power failure; unflushed cache contents are
// excluded by construction).
func (db *DB) SaveFile(path string) error { return db.Region.SaveFile(path) }

// Crash simulates process death in place: volatile state is destroyed
// under the given adversary and a fresh DB is attached over the surviving
// bytes. rng drives CrashRandom and may be nil otherwise.
func (db *DB) Crash(mode CrashMode, rng *rand.Rand, cfg Config) (*DB, error) {
	reg2, err := db.Region.Crash(mode, rng)
	if err != nil {
		return nil, err
	}
	return attach(reg2, cfg)
}

// NewThread registers a worker with the runtime.
func (db *DB) NewThread() (Thread, error) { return db.Runtime.NewThread() }

// NewLock creates a lock with a persistent indirect holder.
func (db *DB) NewLock() (*Lock, error) { return db.Locks.Create() }

// LockAt returns the transient lock for a holder address (for locks whose
// holders the application stored in its own persistent structures).
func (db *DB) LockAt(holder uint64) *Lock { return db.Locks.ByHolder(holder) }

// Alloc allocates n bytes of persistent memory with the first n bytes
// zeroed. Size-class rounding may hand out a larger block; bytes past n
// are unspecified, so a caller that discovers extra capacity (e.g. via
// the allocator's BlockSize) must zero that slack itself before relying
// on it.
func (db *DB) Alloc(n int) (uint64, error) { return db.Region.Alloc.Alloc(n) }

// SetRoot durably publishes a root pointer (slots 1-15 are application
// slots).
func (db *DB) SetRoot(slot int, addr uint64) { db.Region.SetRoot(slot, addr) }

// Root reads a root pointer.
func (db *DB) Root(slot int) uint64 { return db.Region.Root(slot) }

// Recover completes every FASE a crash interrupted, using the resume
// entries registered on db.Registry (§III-C).
func (db *DB) Recover() (RecoveryStats, error) { return db.Runtime.Recover(db.Registry) }

// NewResumeRegistry returns an empty registry (for callers managing their
// own).
func NewResumeRegistry() *ResumeRegistry { return persist.NewResumeRegistry() }
